// Package atomicf exercises the atomicfield analyzer: true positives carry
// want comments, everything else is the false-positive-avoidance corpus.
package atomicf

import "sync/atomic"

// Stats mixes atomic and plain access to mixed; hits and flag are atomic
// everywhere and 8-byte aligned, so only the mixed accesses are findings.
type Stats struct {
	flag  int32
	_     int32
	hits  uint64
	mixed int64
}

func (s *Stats) Hit()         { atomic.AddUint64(&s.hits, 1) }
func (s *Stats) Hits() uint64 { return atomic.LoadUint64(&s.hits) }
func (s *Stats) Raise()       { atomic.StoreInt32(&s.flag, 1) }
func (s *Stats) Bump()        { atomic.AddInt64(&s.mixed, 1) }

// Read races with Bump.
func (s *Stats) Read() int64 {
	return s.mixed // want `plain access to Stats\.mixed`
}

// Write races with Bump.
func (s *Stats) Write(v int64) {
	s.mixed = v // want `plain access to Stats\.mixed`
}

// leak hands out the address outside the atomic API — also a mixed access.
func leak(s *Stats) *int64 {
	return &s.mixed // want `plain access to Stats\.mixed`
}

// NewStats initialises a fresh object: no other goroutine can hold it yet,
// so the plain stores are exempt.
func NewStats(seed int64) *Stats {
	s := &Stats{}
	s.mixed = seed
	return s
}

// valueFresh covers the zero-value and new(T) freshness shapes.
func valueFresh() int64 {
	var a Stats
	a.mixed = 1
	b := new(Stats)
	b.mixed = 2
	return a.mixed + b.mixed
}

// Gate is atomic-only 32-bit state: fine everywhere.
type Gate struct {
	state uint32
}

func (g *Gate) TryLock() bool { return atomic.CompareAndSwapUint32(&g.state, 0, 1) }
func (g *Gate) Unlock()       { atomic.StoreUint32(&g.state, 0) }

// Broken is the CAS-protected field's plain escape hatch.
func (g *Gate) Broken() {
	g.state = 0 // want `plain access to Gate\.state`
}

// Skewed puts a 64-bit atomic after one 32-bit word: GOARCH=386 and arm
// align uint64 to 4 bytes, so the field lands misaligned on both.
type Skewed struct {
	n int32
	c int64 // want `Skewed\.c is used with 64-bit sync/atomic but sits at misaligned offset 4 on GOARCH=386/arm`
}

func (s *Skewed) Inc() { atomic.AddInt64(&s.c, 1) }

// Embedded reaches the 64-bit field through an embedded struct; the offset
// accumulates through the embedding, so inner.c sits at 4+0 ... still
// misaligned. The label names the selection's receiver type.
type inner struct {
	c int64 // want `Embedded\.c is used with 64-bit sync/atomic but sits at misaligned offset 4 on GOARCH=386/arm`
}

type Embedded struct {
	pad int32
	inner
}

func (e *Embedded) Inc() { atomic.AddInt64(&e.c, 1) }

// Wrapped uses the self-aligning wrapper types: invisible to the analyzer,
// and the plain neighbour stays plain without findings.
type Wrapped struct {
	pad   int32
	n     atomic.Uint64
	plain int
}

func (w *Wrapped) Inc() {
	w.n.Add(1)
	w.plain++
}

// Slot mirrors a raw-integer generation counter: the recycler bumps it with
// sync/atomic so lock-free readers can detect stale handles, which makes
// every plain access a race.
type Slot struct {
	gen  uint32
	data int
}

// Recycle invalidates every outstanding handle to the slot.
func (s *Slot) Recycle() { atomic.AddUint32(&s.gen, 1) }

// Live is the sanctioned probe.
func (s *Slot) Live(gen uint32) bool { return atomic.LoadUint32(&s.gen) == gen }

// StaleCheck reads the generation plainly — a stale-handle check that races
// with Recycle and can validate a handle against a torn counter.
func (s *Slot) StaleCheck(gen uint32) bool {
	return s.gen == gen // want `plain access to Slot\.gen`
}

// Touch writes the slot through a handle it never validated; data is not
// atomic anywhere, so the analyzer stays silent — slot data discipline
// belongs to the generation protocol, not this checker.
func (s *Slot) Touch(v int) { s.data = v }

// Spine covers the atomic.Pointer slab-spine shape: wrapper types self
// synchronise, are invisible to the analyzer, and keep plain neighbours
// plain.
type Spine struct {
	slabs [2]atomic.Pointer[Slot]
	hint  int
}

func (sp *Spine) Publish(i int, p *Slot) {
	sp.slabs[i].Store(p)
	sp.hint = i
}

func (sp *Spine) Get(i int) *Slot { return sp.slabs[i].Load() }

// PlainOnly is never touched atomically: plain access everywhere is fine.
type PlainOnly struct {
	count int64
}

func (p *PlainOnly) Inc() { p.count++ }
