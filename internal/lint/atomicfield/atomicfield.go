// Package atomicfield defines an analyzer enforcing all-or-nothing
// sync/atomic discipline on struct fields.
//
// A field that any code in the package accesses through a sync/atomic
// function (atomic.AddUint64(&s.f, 1), atomic.LoadInt64(&s.f), ...) must be
// accessed that way everywhere: one plain read or write racing with the
// atomic users is a data race the race detector only catches when the
// interleaving happens to fire, and -race never runs on the 32-bit targets
// where the torn reads are widest. The analyzer flags every plain access
// (including taking the field's address outside an atomic call) to a field
// the package elsewhere treats as atomic. Accesses to provably fresh objects
// — locals created in the same function by a composite literal, new(T) or a
// zero-value declaration — are exempt, so constructors can initialise
// atomically-used fields without ceremony.
//
// The analyzer also checks 64-bit alignment: a plain int64/uint64 field used
// with the 64-bit atomic functions must sit at an 8-byte offset in every
// struct layout, but GOARCH=386 and GOARCH=arm align uint64 to 4 bytes, so a
// field that follows an odd number of 32-bit words faults or tears at
// runtime on those targets. Offsets are computed with the real gc layout
// rules for both architectures, accumulated through embedded structs. The
// atomic.Int64/atomic.Uint64 wrapper types self-align (they embed the
// runtime's align64 marker) and are invisible to this analyzer — preferring
// them over plain fields is the standing advice the diagnostics give.
//
// Known false-negative shapes (see DESIGN.md "Static invariants"): the
// mixed-access rule is per-package, so a package that atomically pokes an
// exported field of another package's struct is not correlated with the
// owner's plain accesses; and the alignment walk starts at the selection's
// receiver type, so a misaligned struct reached through an interface or
// unsafe.Pointer round-trip is not seen.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags mixed plain/atomic field access and 64-bit atomics that are
// misaligned on 32-bit struct layouts.
var Analyzer = &lint.Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic must be accessed atomically everywhere, and 64-bit atomics must be 8-byte aligned on GOARCH=386/arm",
	Run:  run,
}

// atomicPrefixes are the sync/atomic function-name prefixes whose first
// argument is the address of the value operated on.
var atomicPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

// archSizes holds the gc layout rules for the 32-bit targets where 64-bit
// atomics need manual alignment. Iterated in name order for determinism.
var archSizes = []struct {
	arch  string
	sizes types.Sizes
}{
	{"386", types.SizesFor("gc", "386")},
	{"arm", types.SizesFor("gc", "arm")},
}

// atomicUse records how a field is used atomically: the earliest call site
// (the anchor for diagnostics on fields declared outside the package), the
// receiver type and selection path of that call (for the alignment walk),
// and whether any use is a 64-bit operation.
type atomicUse struct {
	firstPos token.Pos
	recv     types.Type
	index    []int
	wide     bool
}

func run(pass *lint.Pass) error {
	uses := make(map[*types.Var]*atomicUse)
	inAtomic := make(map[*ast.SelectorExpr]bool)

	// Pass 1: find every sync/atomic call whose operand is a field address.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			wide, ok := atomicCall(pass, call)
			if !ok {
				return true
			}
			sel, ok := fieldAddr(call.Args[0])
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			inAtomic[sel] = true
			u := uses[field]
			if u == nil {
				u = &atomicUse{firstPos: sel.Pos(), recv: selection.Recv(), index: selection.Index()}
				uses[field] = u
			}
			if sel.Pos() < u.firstPos {
				u.firstPos, u.recv, u.index = sel.Pos(), selection.Recv(), selection.Index()
			}
			u.wide = u.wide || wide
			return true
		})
	}
	if len(uses) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must be atomic too.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fresh := freshLocals(pass.TypesInfo, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || inAtomic[sel] {
					return true
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					return true
				}
				field, ok := selection.Obj().(*types.Var)
				if !ok || uses[field] == nil {
					return true
				}
				if root := rootIdent(sel.X); root != nil {
					if obj := pass.TypesInfo.Uses[root]; obj != nil && fresh[obj] {
						return true
					}
				}
				pass.Reportf(sel.Pos(),
					"plain access to %s: the package accesses this field via sync/atomic elsewhere, so mixed access races; use the atomic API here too (or an atomic wrapper type)",
					fieldLabel(uses[field], field))
				return true
			})
		}
	}

	// Pass 3: 64-bit atomics must be 8-byte aligned under 32-bit layouts.
	var diags []lint.Diagnostic
	for field, u := range uses {
		if !u.wide {
			continue
		}
		var bad []string
		var off int64
		for _, as := range archSizes {
			o, ok := pathOffset(as.sizes, u.recv, u.index)
			if ok && o%8 != 0 {
				bad = append(bad, as.arch)
				off = o
			}
		}
		if len(bad) == 0 {
			continue
		}
		pos := u.firstPos
		if field.Pkg() == pass.Pkg {
			pos = field.Pos()
		}
		diags = append(diags, lint.Diagnostic{Pos: pos, Message: fmt.Sprintf(
			"%s is used with 64-bit sync/atomic but sits at misaligned offset %d on GOARCH=%s; move it to the front of the struct or use an atomic wrapper type",
			fieldLabel(u, field), off, strings.Join(bad, "/"))})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	return nil
}

// atomicCall reports whether call is a sync/atomic function taking a value
// address, and whether it is a 64-bit operation.
func atomicCall(pass *lint.Pass, call *ast.CallExpr) (wide, ok bool) {
	fun, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return false, false
	}
	pkgIdent, okIdent := fun.X.(*ast.Ident)
	if !okIdent {
		return false, false
	}
	pkgName, okPkg := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !okPkg || pkgName.Imported().Path() != "sync/atomic" {
		return false, false
	}
	name := fun.Sel.Name
	for _, p := range atomicPrefixes {
		if strings.HasPrefix(name, p) {
			return strings.HasSuffix(name, "64"), true
		}
	}
	return false, false
}

// fieldAddr matches &x.f (with any parenthesisation) and returns the
// selector.
func fieldAddr(e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, false
	}
	x := u.X
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			break
		}
		x = p.X
	}
	sel, ok := x.(*ast.SelectorExpr)
	return sel, ok
}

// fieldLabel renders a field as Type.field for diagnostics.
func fieldLabel(u *atomicUse, field *types.Var) string {
	t := deref(u.recv)
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + field.Name()
	}
	return "struct." + field.Name()
}

// pathOffset accumulates the field's byte offset from the selection's
// receiver through any embedded structs under the given layout rules. An
// embedded pointer restarts the layout at a fresh allocation (Go guarantees
// allocations are 8-byte aligned), so the offset resets to zero there.
func pathOffset(sizes types.Sizes, recv types.Type, index []int) (int64, bool) {
	off := int64(0)
	t := recv
	for step, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			off = 0
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for j := range fields {
			fields[j] = st.Field(j)
		}
		off += sizes.Offsetsof(fields)[i]
		t = st.Field(i).Type()
		if step < len(index)-1 {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				off = 0
			}
		}
	}
	return off, true
}

// freshLocals collects the function's provably fresh locals: variables bound
// to a composite literal, &composite, new(T) or a zero-value var
// declaration. Accesses through them cannot race — no other goroutine has
// the object yet — so constructors may initialise atomic fields plainly.
func freshLocals(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !freshExpr(st.Rhs[i]) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if len(st.Values) != 0 && (i >= len(st.Values) || !freshExpr(st.Values[i])) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// freshExpr matches the allocation shapes that produce a private object:
// T{...}, &T{...} and new(T).
func freshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// rootIdent walks to the base identifier of a selector chain, or nil when
// the base is a call or other non-traceable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// deref unwraps one pointer layer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
