package nofloat64wire_test

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/nofloat64wire"
)

// TestDirectiveSetMatchesAllowList walks the repository and asserts the
// sanctioned laundering sites are exactly the tagged packages: every
// directory carrying a //soda:wire-boundary directive is on the analyzer's
// allow list, and every allow-listed package in the tree carries the
// directive. Either drift direction is a silent hole in the gate.
func TestDirectiveSetMatchesAllowList(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	taggedDirs := map[string]bool{}
	wireNamedDirs := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if nofloat64wire.IsWireBoundary(filepath.ToSlash(rel)) {
			wireNamedDirs[filepath.ToSlash(rel)] = true
		}
		if fileHasDirective(t, path) {
			taggedDirs[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	want := []string{"internal/dash", "internal/flightrec", "internal/httpseg", "internal/proto", "internal/telemetry", "internal/trace"}
	if got := sortedKeys(taggedDirs); !equal(got, want) {
		t.Errorf("directories carrying %s = %v, want %v", nofloat64wire.Directive, got, want)
	}
	// Both sources of truth must name the same set: a package whose base
	// name is allow-listed but which lacks the tag (or vice versa) is drift.
	if got := sortedKeys(wireNamedDirs); !equal(got, want) {
		t.Errorf("allow-listed package directories = %v, want %v", got, want)
	}
	for _, dir := range want {
		if !nofloat64wire.IsWireBoundary("repro/" + dir) {
			t.Errorf("IsWireBoundary(repro/%s) = false for a tagged package", dir)
		}
	}
}

// fileHasDirective reports whether the file contains the directive as a
// line of its own (the analyzer requires it in the package doc; for the
// exact-set test, anywhere in a non-test file counts as a claim).
func fileHasDirective(t *testing.T, path string) bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == nofloat64wire.Directive {
			return true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
