// Package proto is a fixture wire-boundary package: its base name is in the
// sanctioned list and its package comment carries the directive, so
// float64-laundered units may legitimately flow into (and inside) it.
//
//soda:wire-boundary
package proto

// Manifest mirrors a wire struct: raw float64 fields, because the other end
// of this package is a byte format.
type Manifest struct {
	SegmentSeconds float64
	RateMbps       float64
}

// Encode consumes raw numbers at the boundary.
func Encode(segmentSeconds, rateMbps float64) Manifest {
	return Manifest{SegmentSeconds: segmentSeconds, RateMbps: rateMbps}
}
