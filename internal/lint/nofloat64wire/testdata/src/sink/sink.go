// Package sink is an ordinary non-wire fixture package: float64-laundered
// unit values must not cross into it.
package sink

// Config mirrors a foreign configuration struct with raw float64 fields.
type Config struct {
	TimeoutSeconds float64
	Label          string
}

// Consume takes a raw float64.
func Consume(x float64) float64 { return x }

// ConsumeMany is variadic.
func ConsumeMany(xs ...float64) int { return len(xs) }

// Describe takes an interface: fmt-style reflective consumption.
func Describe(v any) string { _ = v; return "" }
