// Package units is a fixture mirror of repro/internal/units: its import
// path ends in "units", so its defined float64 types are unit types to the
// nofloat64wire analyzer.
package units

// Seconds is a duration in seconds.
type Seconds float64

// Mbps is a rate in megabits per second.
type Mbps float64

// Megabits is a size in megabits.
type Megabits float64

// Clamp is a units-package helper taking a raw float64: calls into the
// units package are exempt destinations.
func Clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}
