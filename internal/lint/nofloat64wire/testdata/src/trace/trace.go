// Package trace is a fixture wire-boundary package whose package comment
// forgot the directive: the tag set and the allow list must not drift.
package trace // want `package trace is a sanctioned wire boundary but its package comment lacks the //soda:wire-boundary directive`

// ParseBandwidth consumes a raw number at the boundary.
func ParseBandwidth(mbps float64) float64 { return mbps }
