// Package core is the nofloat64wire fixture: a controller-side package that
// launders unit values through float64 in both sanctioned and unsanctioned
// directions.
package core

import (
	"fmt"
	"math"

	"proto"
	"sink"
	"units"
)

// LocalState is an in-package struct with a raw float64 field: in-package
// laundering is allowed, the unit is one screen away.
type LocalState struct {
	BufferSeconds float64
}

// BadCall ships a laundered unit into a foreign package as a call argument.
func BadCall(buf units.Seconds) float64 {
	return sink.Consume(float64(buf)) // want `float64\(Seconds\) crosses into package sink, which is not a wire boundary`
}

// BadVariadicCall hits the same rule through a variadic parameter.
func BadVariadicCall(buf units.Seconds, rate units.Mbps) int {
	return sink.ConsumeMany(1.5, float64(rate)) // want `float64\(Mbps\) crosses into package sink, which is not a wire boundary`
}

// BadCompositeLit stores a laundered unit into a foreign struct literal.
func BadCompositeLit(buf units.Seconds) sink.Config {
	return sink.Config{
		TimeoutSeconds: float64(buf), // want `float64\(Seconds\) crosses into sink\.Config, which is not a wire boundary`
		Label:          "ok",
	}
}

// BadFieldAssign writes a laundered unit into a foreign field.
func BadFieldAssign(cfg *sink.Config, buf units.Seconds) {
	cfg.TimeoutSeconds = float64(buf) // want `float64\(Seconds\) assigned to sink field TimeoutSeconds, which is not a wire boundary`
}

// GoodWireCall launders at the sanctioned boundary: proto is a tagged wire
// package, the other end is a byte format.
func GoodWireCall(seg units.Seconds, rate units.Mbps) proto.Manifest {
	return proto.Encode(float64(seg), float64(rate))
}

// GoodWireLiteral fills a wire struct directly.
func GoodWireLiteral(seg units.Seconds) proto.Manifest {
	m := proto.Manifest{SegmentSeconds: float64(seg)}
	m.RateMbps = float64(units.Mbps(6))
	return m
}

// GoodMath uses package math on a laundered unit: dimensionless numerics is
// math's whole job.
func GoodMath(buf units.Seconds) float64 {
	return math.Abs(float64(buf))
}

// GoodUnitsHelper calls back into the units package.
func GoodUnitsHelper(buf units.Seconds) float64 {
	return units.Clamp(float64(buf))
}

// GoodInterfaceParam formats a laundered unit: interface-typed parameters
// consume values reflectively, no quantity arithmetic on the far side.
func GoodInterfaceParam(buf units.Seconds) string {
	fmt.Sprintln(float64(buf))
	return sink.Describe(float64(buf))
}

// GoodInPackage keeps laundering local: same-package calls, literals and
// assignments are allowed.
func GoodInPackage(buf units.Seconds) LocalState {
	st := LocalState{BufferSeconds: float64(buf)}
	st.BufferSeconds = float64(buf) + 1
	consumeLocal(float64(buf))
	return st
}

func consumeLocal(x float64) float64 { return x }

// GoodDerived passes derived dimensionless arithmetic, not a bare laundered
// unit: ratios and products are new quantities, out of scope.
func GoodDerived(buf units.Seconds, total units.Seconds) float64 {
	return sink.Consume(float64(buf) / float64(total))
}

// GoodBuiltin appends into a local slice: builtins have no package.
func GoodBuiltin(buf units.Seconds, xs []float64) []float64 {
	return append(xs, float64(buf))
}
