// Package badwire tags itself as a wire boundary without being in the
// sanctioned list: self-granted laundering licenses are findings.
//
//soda:wire-boundary
package badwire // want `package badwire carries //soda:wire-boundary but is not in the sanctioned wire-boundary list`

// Sink consumes a raw number.
func Sink(x float64) float64 { return x }
