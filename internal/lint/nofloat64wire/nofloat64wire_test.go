package nofloat64wire_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nofloat64wire"
)

func TestCrossPackageLaundering(t *testing.T) {
	linttest.Run(t, nofloat64wire.Analyzer, "core")
}

func TestWirePackageClean(t *testing.T) {
	linttest.Run(t, nofloat64wire.Analyzer, "proto")
}

func TestUntaggedWirePackage(t *testing.T) {
	linttest.Run(t, nofloat64wire.Analyzer, "trace")
}

func TestSelfGrantedDirective(t *testing.T) {
	linttest.Run(t, nofloat64wire.Analyzer, "badwire")
}

func TestIsWireBoundary(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/proto", true},
		{"repro/internal/httpseg", true},
		{"repro/internal/dash", true},
		{"repro/internal/trace", true},
		{"repro/internal/trace_test", true},
		{"repro/internal/telemetry", true},
		{"repro/internal/tracegen", false},
		{"repro/internal/core", false},
		{"proto", true},
		{"sink", false},
	}
	for _, c := range cases {
		if got := nofloat64wire.IsWireBoundary(c.path); got != c.want {
			t.Errorf("IsWireBoundary(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
