// Package nofloat64wire confines float64-laundered unit values to the wire.
//
// After the internal/units migration, float64(x) is the sanctioned exit from
// typed dimensional arithmetic into plain numbers. Inside a package that is
// fine: the conversion and its consumer are one screen apart and the unit is
// recoverable by reading the function. The moment the raw float64 crosses a
// package boundary, the unit is gone — the receiving package sees a bare
// number and cannot tell 20 seconds from 20 megabits, which is exactly the
// bug class internal/units exists to kill.
//
// The repository therefore designates a small set of wire-boundary packages
// — the serialization surfaces where quantities genuinely must become plain
// numbers because the other end is a byte format, not Go:
//
//	internal/proto      binary segment-streaming protocol (JSON manifest)
//	internal/httpseg    HTTP/DASH segment transport
//	internal/dash       MPEG-DASH MPD reader/writer
//	internal/trace      trace CSV reader/writer
//	internal/telemetry  metrics exposition and decision-trace export (the
//	                    registry enforces unit-suffixed metric names, so the
//	                    dimension survives in the name even though the wire
//	                    value is a bare number)
//
// Each wire package carries the machine-checked doc directive
//
//	//soda:wire-boundary
//
// on its package comment. The analyzer cross-checks the two sources of
// truth: a sanctioned package missing the directive is a finding, and an
// unsanctioned package carrying the directive is a finding, so the tag set
// and the allow list cannot drift apart.
//
// Everywhere else, the analyzer flags a float64(unitValue) conversion whose
// result immediately crosses a package boundary:
//
//  1. as an argument to a function or method declared in another package,
//  2. as a field value in a composite literal of a struct type declared in
//     another package, or
//  3. assigned to a field of a struct type declared in another package.
//
// Exempt destinations: the wire-boundary packages themselves, package math
// (dimensionless numerics is its whole job), the units package (its own
// constructors and helpers), and parameters of interface type (fmt-style
// formatting consumes values reflectively; no quantity arithmetic happens
// on the other side).
//
// The check is deliberately single-expression: laundering into a local
// float64 variable and passing that along is out of scope, as is derived
// dimensionless arithmetic like float64(a)/float64(b). The analyzer exists
// to make the idiomatic shortcut — casting at the call site — visibly wrong,
// not to be a data-flow analysis.
package nofloat64wire

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/lint"
)

// Directive is the doc-comment tag a wire-boundary package must carry.
const Directive = "//soda:wire-boundary"

// WirePackages are the sanctioned laundering sites, identified by the last
// element of their import path (fixture packages mirror real ones by base
// name, like the unitsafe "units" suffix rule). A package's external test
// package shares its boundary status.
var WirePackages = []string{"proto", "httpseg", "dash", "trace", "telemetry", "flightrec"}

// Analyzer is the nofloat64wire analyzer.
var Analyzer = &lint.Analyzer{
	Name: "nofloat64wire",
	Doc: "flags float64(unit) conversions that cross a package boundary outside " +
		"the tagged wire-boundary packages, and keeps the tag set and allow list in sync",
	Run: run,
}

// IsWireBoundary reports whether the import path names a sanctioned
// wire-boundary package (or its external test package).
func IsWireBoundary(pkgPath string) bool {
	base := strings.TrimSuffix(path.Base(pkgPath), "_test")
	for _, w := range WirePackages {
		if base == w {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	pkgPath := pass.Pkg.Path()
	if strings.HasSuffix(pkgPath, "units") {
		return nil
	}
	tagged := hasDirective(pass.Files)
	wire := IsWireBoundary(pkgPath)
	switch {
	case wire && !tagged && !isTestPackage(pass.Pkg):
		for _, f := range pass.Files {
			if f.Doc != nil || len(pass.Files) == 1 {
				pass.Reportf(f.Name.Pos(),
					"package %s is a sanctioned wire boundary but its package comment lacks the %s directive",
					pass.Pkg.Name(), Directive)
				break
			}
		}
	case tagged && !wire:
		for _, f := range pass.Files {
			if hasDirective([]*ast.File{f}) {
				pass.Reportf(f.Name.Pos(),
					"package %s carries %s but is not in the sanctioned wire-boundary list; remove the directive or extend nofloat64wire.WirePackages",
					pass.Pkg.Name(), Directive)
			}
		}
	}
	if wire {
		// Inside the wire, laundering is the point.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkCompositeLit(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// hasDirective reports whether any file's package comment contains the
// wire-boundary directive as a line of its own.
func hasDirective(files []*ast.File) bool {
	for _, f := range files {
		if f.Doc == nil {
			continue
		}
		for _, c := range f.Doc.List {
			if strings.TrimSpace(c.Text) == Directive {
				return true
			}
		}
	}
	return false
}

// isTestPackage reports whether pkg is a test variant (external _test
// package or a test-augmented build), which inherits but need not repeat
// the package doc of the package under test.
func isTestPackage(pkg *types.Package) bool {
	return strings.HasSuffix(pkg.Name(), "_test") || strings.Contains(pkg.Path(), ".test")
}

// unitType returns the named unit type of t, or nil: a defined float64 type
// from a package whose import path ends in "units".
func unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "units") {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Kind() != types.Float64 {
		return nil
	}
	return named
}

// launderedUnit returns the unit type inside a float64(x) conversion
// expression, or nil.
func launderedUnit(pass *lint.Pass, e ast.Expr) *types.Named {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	if basic, ok := tv.Type.(*types.Basic); !ok || basic.Kind() != types.Float64 {
		return nil
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return nil
	}
	return unitType(argTV.Type)
}

// exemptDestination reports whether a float64-laundered unit may legitimately
// flow into pkg: the wire boundaries, math, and units itself.
func exemptDestination(pkg *types.Package) bool {
	p := pkg.Path()
	return IsWireBoundary(p) || p == "math" || strings.HasSuffix(p, "units")
}

// checkCall flags float64(unit) arguments to calls of functions declared in
// a different, non-exempt package (skipping interface-typed parameters,
// where the value is consumed reflectively).
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	callee := calleeObject(pass, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg || exemptDestination(callee.Pkg()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		u := launderedUnit(pass, arg)
		if u == nil {
			continue
		}
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < sig.Params().Len():
			paramType = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := paramType.Underlying().(*types.Interface); isIface {
			continue
		}
		pass.Reportf(arg.Pos(),
			"float64(%s) crosses into package %s, which is not a wire boundary; pass the %s value and convert on the far side, or route through a tagged wire package",
			u.Obj().Name(), callee.Pkg().Name(), u.Obj().Name())
	}
}

// calleeObject resolves the function or method object a call invokes.
func calleeObject(pass *lint.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// checkCompositeLit flags float64(unit) field values in composite literals
// of struct types declared in a different, non-exempt package.
func checkCompositeLit(pass *lint.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	named := unwrapNamed(tv.Type)
	if named == nil {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	owner := named.Obj().Pkg()
	if owner == nil || owner == pass.Pkg || exemptDestination(owner) {
		return
	}
	for _, elt := range cl.Elts {
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
		}
		if u := launderedUnit(pass, value); u != nil {
			pass.Reportf(value.Pos(),
				"float64(%s) crosses into %s.%s, which is not a wire boundary; give the field a unit type or route through a tagged wire package",
				u.Obj().Name(), owner.Name(), named.Obj().Name())
		}
	}
}

// checkAssign flags float64(unit) assigned to a field declared in a
// different, non-exempt package.
func checkAssign(pass *lint.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		u := launderedUnit(pass, as.Rhs[i])
		if u == nil {
			continue
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !field.IsField() || field.Pkg() == nil || field.Pkg() == pass.Pkg || exemptDestination(field.Pkg()) {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(),
			"float64(%s) assigned to %s field %s, which is not a wire boundary; give the field a unit type or route through a tagged wire package",
			u.Obj().Name(), field.Pkg().Name(), field.Name())
	}
}

// unwrapNamed returns the named type of t, looking through one level of
// pointer (for &pkg.T{...} literals the composite's own type is already the
// struct, but tv types of some literal positions carry pointers).
func unwrapNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
