// Package linttest runs lint analyzers over fixture packages, in the style
// of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <analyzer>/testdata/src/<importpath>/ and carry
// expectations as trailing comments of the form
//
//	x = append(x, v) // want `regexp`
//
// Each expectation must be matched by exactly one diagnostic on the same
// line, and every diagnostic must match an expectation; any mismatch fails
// the test. Lines without a want comment double as the
// false-positive-avoidance cases.
//
// Fixture packages may import sibling fixture packages (resolved from
// testdata/src and type-checked from source) and the standard library
// (resolved via `go list -export`, i.e. compiler export data).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads testdata/src/<pkgpath> relative to the test's working directory,
// applies the analyzer, and checks diagnostics against // want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgpath string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*fixturePkg),
	}
	fp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var got []lint.Finding
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
		Report: func(d lint.Diagnostic) {
			got = append(got, lint.Finding{
				Pos:      ld.fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	want, err := collectWants(ld.fset, fp.files)
	if err != nil {
		t.Fatal(err)
	}
	check(t, got, want)
}

// expectation is one // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// collectWants extracts // want expectations from the fixture sources.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					pos := fset.Position(c.Pos())
					return nil, fmt.Errorf("%s: bad want regexp: %v", pos, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants, nil
}

// check pairs diagnostics with expectations and reports both directions of
// mismatch.
func check(t *testing.T, got []lint.Finding, want []*expectation) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool {
		if got[i].Pos.Filename != got[j].Pos.Filename {
			return got[i].Pos.Filename < got[j].Pos.Filename
		}
		return got[i].Pos.Line < got[j].Pos.Line
	})
	for _, d := range got {
		found := false
		for _, w := range want {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages from testdata/src, resolving
// stdlib imports through compiler export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	std     types.Importer
}

// Import implements types.Importer: sibling fixtures from source, everything
// else from stdlib export data.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcRoot, path); isDir(dir) {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	if l.std == nil {
		imp, err := stdImporter(l.fset)
		if err != nil {
			return nil, err
		}
		l.std = imp
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	l.pkgs[path] = fp
	return fp, nil
}

// stdImporter builds a gc importer over export data for the whole standard
// library, produced once per test binary by `go list -export`.
func stdImporter(fset *token.FileSet) (types.Importer, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-f",
		"{{if .Export}}{{.ImportPath}} {{.Export}}{{end}}", "std")
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export std: %v", err)
	}
	exports := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			exports[fields[0]] = fields[1]
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
