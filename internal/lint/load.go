package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// Loaded is one parsed, type-checked package ready for analysis.
type Loaded struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Load resolves patterns (as `go list` would, e.g. "./...") in dir, then
// parses and type-checks every matched package. Dependency types are read
// from compiler export data produced by `go list -export`, so only the
// matched packages themselves are type-checked from source.
//
// Test files are included: packages are listed with -test, so a package
// with in-package tests is analyzed as its test-augmented variant
// ("pkg [pkg.test]", superseding the plain package to avoid duplicate
// findings on the shared files), and external test packages ("pkg_test")
// are analyzed as targets of their own. The generated test-main binaries
// ("pkg.test") are skipped. The invariants the analyzers enforce hold over
// the test corpus too — a dimension slip in an expectation hides real bugs
// just as well as one in the solver.
func Load(dir string, patterns ...string) ([]*Loaded, error) {
	args := append([]string{
		"list", "-export", "-deps", "-test",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,ForTest,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listedPackage
	exports := make(map[string]string)
	augmented := make(map[string]bool) // plain paths superseded by a test variant
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue // dependencies and generated test-main binaries
		}
		if p.ForTest != "" && p.ForTest == normalizePath(p.ImportPath) {
			augmented[p.ForTest] = true
		}
		pkg := p
		targets = append(targets, &pkg)
	}

	var kept []*listedPackage
	for _, p := range targets {
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue // the test variant carries this package's files too
		}
		kept = append(kept, p)
	}

	// Parse and type-check packages concurrently. Each package owns its
	// importer (so ImportMaps stay isolated) and the shared FileSet
	// synchronizes AddFile internally; results land in index-addressed slots,
	// so the returned order is the deterministic go list order regardless of
	// which worker finishes first.
	fset := token.NewFileSet()
	out := make([]*Loaded, len(kept))
	errs := make([]error, len(kept))
	var wg sync.WaitGroup
	sem := make(chan struct{}, poolSize(len(kept)))
	for i, p := range kept {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = checkPackage(fset, exports, p)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// poolSize bounds a worker pool: one worker per package up to GOMAXPROCS.
func poolSize(n int) int {
	if p := runtime.GOMAXPROCS(0); n > p {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

// normalizePath strips the " [pkg.test]" disambiguation suffix go list
// appends to test-variant import paths.
func normalizePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// checkPackage parses and type-checks one listed package. Each package gets
// its own importer so that its ImportMap (which redirects imports of the
// package under test to the test-augmented variant's export data) cannot
// leak into other packages through the importer's cache.
func checkPackage(fset *token.FileSet, exports map[string]string, p *listedPackage) (*Loaded, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	path := normalizePath(p.ImportPath)
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Loaded{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Finding is a positioned diagnostic from a named analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies each analyzer to each loaded package and returns all findings
// in file-position order within each (package, analyzer) pair. Packages are
// analyzed concurrently on a bounded worker pool — analyzers keep no state
// across Run calls and never mutate the packages they inspect — while the
// returned slice keeps the deterministic serial order: findings are
// collected per package and concatenated in load order.
func Run(pkgs []*Loaded, analyzers []*Analyzer) ([]Finding, error) {
	perPkg := make([][]Finding, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, poolSize(len(pkgs)))
	for i, l := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer:  a,
					Fset:      l.Fset,
					Files:     l.Files,
					Pkg:       l.Pkg,
					TypesInfo: l.Info,
					Report: func(d Diagnostic) {
						perPkg[i] = append(perPkg[i], Finding{
							Pos:      l.Fset.Position(d.Pos),
							Analyzer: a.Name,
							Message:  d.Message,
						})
					},
				}
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("%s on %s: %v", a.Name, l.ImportPath, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var findings []Finding
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		findings = append(findings, perPkg[i]...)
	}
	return findings, nil
}
