// Package unitsafe closes the loopholes the type system leaves open after
// the internal/units migration.
//
// internal/units gives every dimensioned quantity (seconds, megabits, Mb/s,
// ...) its own defined type over float64, so mixing dimensions in arithmetic
// is already a compile error. Three holes remain, and each is a real ABR bug
// class — a scale or dimension slip that stays perfectly type-correct:
//
//  1. Direct conversion between two unit types. Seconds(ms) compiles because
//     both have underlying float64, and is silently off by 1000x. Same-
//     dimension conversions must go through the named methods
//     (ms.Seconds(), r.Kbps(), b.Bits()), which apply the scale exactly once.
//
//  2. Mixing dimensions after laundering through float64. float64(x) is the
//     sanctioned exit into dimensionless arithmetic, but
//     float64(buf) + float64(rate) adds seconds to Mb/s — the cast defeats
//     the checker without changing the physics. Additive and ordering
//     operators whose two operands are float64-conversions of *different*
//     unit types are reported. (Multiplying or dividing them is legitimate:
//     that is how new dimensions are formed.)
//
//  3. Raw untyped literals where a unit type is expected. BufferCap: 20
//     type-checks via implicit conversion but records no unit on the number
//     the reader sees; the next maintainer cannot tell 20 seconds from
//     20 megabits. Call arguments and struct-literal fields must spell it:
//     units.Seconds(20). Composite literals of unit-typed slices, arrays and
//     maps are exempt — []units.Mbps{6, 6, 200} names the unit once for the
//     whole collection.
//
// A unit type is any defined type with underlying float64 declared in a
// package whose import path ends in "units".
package unitsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the unitsafe analyzer.
var Analyzer = &lint.Analyzer{
	Name: "unitsafe",
	Doc: "flags direct conversions between unit types, dimension mixing laundered " +
		"through float64, and raw untyped literals where a unit type is expected",
	Run: run,
}

func run(pass *lint.Pass) error {
	// The units package itself is exempt: it is where the named conversion
	// methods legitimately apply raw scale factors.
	if strings.HasSuffix(pass.Pkg.Path(), "units") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
				checkCallLiterals(pass, n)
			case *ast.BinaryExpr:
				checkLaunderedMix(pass, n)
			case *ast.CompositeLit:
				checkStructLiterals(pass, n)
			}
			return true
		})
	}
	return nil
}

// unitType returns the named unit type of t, or nil. Unit types are defined
// float64 types from a package named units.
func unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "units") {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Kind() != types.Float64 {
		return nil
	}
	return named
}

// checkConversion flags T(x) where T and x's type are different unit types:
// the scale factor between them is silently dropped.
func checkConversion(pass *lint.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := unitType(tv.Type)
	if dst == nil {
		return
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	src := unitType(argTV.Type)
	if src == nil || types.Identical(src, dst) {
		return
	}
	pass.Reportf(call.Pos(),
		"direct conversion %s(%s) drops the scale factor between units; use the named conversion method or go through float64 deliberately",
		dst.Obj().Name(), src.Obj().Name())
}

// launderedUnit returns the unit type inside a float64(x) conversion, or nil.
func launderedUnit(pass *lint.Pass, e ast.Expr) *types.Named {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	if basic, ok := tv.Type.(*types.Basic); !ok || basic.Kind() != types.Float64 {
		return nil
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return nil
	}
	return unitType(argTV.Type)
}

// additiveOrOrdering reports operators for which both operands must share a
// dimension. Multiplicative operators legitimately combine dimensions.
func additiveOrOrdering(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// checkLaunderedMix flags float64(a) + float64(b) where a and b carry
// different units: the casts hide a dimension error.
func checkLaunderedMix(pass *lint.Pass, bin *ast.BinaryExpr) {
	if !additiveOrOrdering(bin.Op) {
		return
	}
	left := launderedUnit(pass, bin.X)
	right := launderedUnit(pass, bin.Y)
	if left == nil || right == nil || types.Identical(left, right) {
		return
	}
	pass.Reportf(bin.OpPos,
		"%s %s %s mixes units through float64 conversions; convert one side to the other's unit first",
		left.Obj().Name(), bin.Op, right.Obj().Name())
}

// checkCallLiterals flags untyped numeric literals passed where a function
// parameter has a unit type. Conversions are exempt: units.Seconds(2) is the
// fix, not a finding.
func checkCallLiterals(pass *lint.Pass, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || tv.IsType() {
		return
	}
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		lit := untypedNumericLit(arg)
		if lit == nil {
			continue
		}
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < sig.Params().Len():
			paramType = sig.Params().At(i).Type()
		default:
			continue
		}
		if u := unitType(paramType); u != nil {
			pass.Reportf(arg.Pos(),
				"untyped literal %s for parameter of unit type %s; write %s(%s) so the unit is visible",
				litText(lit), u.Obj().Name(), u.Obj().Name(), litText(lit))
		}
	}
}

// checkStructLiterals flags untyped numeric literals as struct-literal field
// values of unit type. Slice/array/map composite literals are exempt: the
// element type names the unit once for the whole collection.
func checkStructLiterals(pass *lint.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	strct, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		var value ast.Expr
		var fieldType types.Type
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			fieldType = obj.Type()
		} else {
			value = elt
			if i >= strct.NumFields() {
				continue
			}
			fieldType = strct.Field(i).Type()
		}
		lit := untypedNumericLit(value)
		if lit == nil {
			continue
		}
		if u := unitType(fieldType); u != nil {
			pass.Reportf(value.Pos(),
				"untyped literal %s for struct field of unit type %s; write %s(%s) so the unit is visible",
				litText(lit), u.Obj().Name(), u.Obj().Name(), litText(lit))
		}
	}
}

// untypedNumericLit unwraps e to a numeric BasicLit, looking through parens
// and a leading +/-. Returns nil for anything else (conversions, consts,
// expressions), which this analyzer deliberately leaves alone.
func untypedNumericLit(e ast.Expr) *ast.BasicLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return nil
	}
	return lit
}

func litText(lit *ast.BasicLit) string { return lit.Value }
