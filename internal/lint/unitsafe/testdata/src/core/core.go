// Package core is the unitsafe fixture: it consumes the fixture units
// package the way the solver consumes repro/internal/units.
package core

import "units"

// Config mirrors a typed configuration struct.
type Config struct {
	BufferCap units.Seconds
	Rate      units.Mbps
	Label     string
}

// Plan takes typed parameters.
func Plan(cap units.Seconds, omega units.Mbps) float64 {
	return float64(cap) * float64(omega)
}

// Describe takes variadic unit values.
func Describe(caps ...units.Seconds) int { return len(caps) }

// BadConversion converts between unit types directly: compiles, but the
// milliseconds value is reinterpreted as seconds, 1000x off.
func BadConversion(ms units.Milliseconds) units.Seconds {
	return units.Seconds(ms) // want `direct conversion Seconds\(Milliseconds\) drops the scale factor`
}

// GoodConversion uses the named method: the scale is applied exactly once.
func GoodConversion(ms units.Milliseconds) units.Seconds {
	return ms.Seconds()
}

// BadLaunderedAdd hides a dimension error behind float64 casts: seconds plus
// megabits-per-second is not a quantity.
func BadLaunderedAdd(buf units.Seconds, rate units.Mbps) float64 {
	return float64(buf) + float64(rate) // want `Seconds \+ Mbps mixes units through float64 conversions`
}

// BadLaunderedCompare orders across dimensions.
func BadLaunderedCompare(buf units.Seconds, rate units.Mbps) bool {
	return float64(buf) < float64(rate) // want `Seconds < Mbps mixes units through float64 conversions`
}

// GoodLaundered is dimensionless arithmetic on a single unit, and forming a
// new dimension by multiplication: both sanctioned float64 exits.
func GoodLaundered(buf units.Seconds, rate units.Mbps) (float64, float64) {
	sameUnit := float64(buf) + float64(units.Seconds(3))
	newDimension := float64(rate) * float64(buf) // rate x time: megabits
	return sameUnit, newDimension
}

// BadLiterals passes and stores raw numbers where units are expected: the
// reader cannot tell 20 seconds from 20 megabits.
func BadLiterals() (float64, Config) {
	x := Plan(20, units.Mbps(6)) // want `untyped literal 20 for parameter of unit type Seconds`
	cfg := Config{
		BufferCap: 20, // want `untyped literal 20 for struct field of unit type Seconds`
		Rate:      units.Mbps(6),
		Label:     "ok",
	}
	return x, cfg
}

// BadPositionalLiteral hits the same rule through an unkeyed struct literal
// and a variadic parameter.
func BadPositionalLiteral() (Config, int) {
	cfg := Config{
		4.5, // want `untyped literal 4.5 for struct field of unit type Seconds`
		units.Mbps(6),
		"ok",
	}
	n := Describe(units.Seconds(1), 2) // want `untyped literal 2 for parameter of unit type Seconds`
	return cfg, n
}

// GoodLiterals spells every unit: conversions are the fix, not a finding,
// and unit-typed collection literals name the element type once.
func GoodLiterals() (float64, Config, []units.Mbps) {
	x := Plan(units.Seconds(20), units.Mbps(6))
	cfg := Config{BufferCap: units.Seconds(20), Rate: units.Mbps(6), Label: "ok"}
	ladder := []units.Mbps{1.5, 4, 10, 20, 35, 60} // element type covers the slice
	return x, cfg, ladder
}
