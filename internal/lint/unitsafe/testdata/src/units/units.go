// Package units is a fixture mirror of repro/internal/units: its import
// path ends in "units", so its defined float64 types are unit types to the
// unitsafe analyzer.
package units

// Seconds is a duration in seconds.
type Seconds float64

// Milliseconds is a duration in milliseconds.
type Milliseconds float64

// Mbps is a rate in megabits per second.
type Mbps float64

// Megabits is a size in megabits.
type Megabits float64

// Seconds converts milliseconds to seconds, applying the scale once.
func (ms Milliseconds) Seconds() Seconds { return Seconds(ms / 1e3) }

// MegabitsIn is rate x time = size.
func (r Mbps) MegabitsIn(d Seconds) Megabits { return Megabits(float64(r) * float64(d)) }
