package unitsafe_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/unitsafe"
)

func TestUnitSafety(t *testing.T) {
	linttest.Run(t, unitsafe.Analyzer, "core")
}
