// Package noalloc defines an analyzer that turns the benchmark suite's
// 0 allocs/op gates into a static guarantee.
//
// A function whose doc comment carries the //soda:noalloc directive must not
// heap-allocate: the analyzer compiles the function's package with
// go build -gcflags=-m, parses the compiler's escape-analysis diagnostics,
// and reports every "escapes to heap" / "moved to heap" line attributed to a
// tagged function's body. Unlike a benchmark gate, the check needs no
// representative workload and cannot be dodged by a lucky steady state: if
// the compiler can prove an allocation site reachable, the finding fires on
// every CI run. The build cache replays -m diagnostics on cache hits, so
// repeated soda-vet runs cost one cache probe, not one compile.
//
// The diagnostics come from the real gc escape analysis, which makes the
// check exact for the shapes it sees but leaves known false negatives
// (see DESIGN.md "Static invariants"): an allocation inside a small callee
// that gets inlined into the tagged function is attributed to the callee's
// source position, so only tagging the callee too closes that hole; and
// escape analysis runs on the plain build, so //soda:noalloc in a _test.go
// file cannot be enforced — the analyzer reports the directive as ignored
// rather than letting it silently rot.
package noalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// Directive marks a function that must not heap-allocate.
const Directive = "//soda:noalloc"

// Analyzer checks //soda:noalloc functions against the compiler's escape
// analysis.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc:  "functions tagged //soda:noalloc must not heap-allocate, per go build -gcflags=-m escape analysis",
	Run:  run,
}

// taggedFunc is one //soda:noalloc function's identity and body extent.
type taggedFunc struct {
	name      string
	file      string
	startLine int
	endLine   int
}

func run(pass *lint.Pass) error {
	var tagged []taggedFunc
	dir := ""
	// Directive comments consumed as function docs; leftovers are misplaced.
	used := make(map[*ast.Comment]bool)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			c := directiveComment(fn.Doc)
			if c == nil {
				continue
			}
			used[c] = true
			if strings.HasSuffix(fname, "_test.go") {
				pass.Reportf(c.Pos(), "%s on %s is ignored in test files: escape analysis runs on the plain build, not the test corpus", Directive, funcName(fn))
				continue
			}
			tagged = append(tagged, taggedFunc{
				name:      funcName(fn),
				file:      fname,
				startLine: pass.Fset.Position(fn.Pos()).Line,
				endLine:   pass.Fset.Position(fn.End()).Line,
			})
			dir = filepath.Dir(fname)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if directiveLine(c.Text) && !used[c] {
					pass.Reportf(c.Pos(), "%s must be the doc comment of a function declaration", Directive)
				}
			}
		}
	}
	if len(tagged) == 0 {
		return nil
	}

	diags, err := escapeDiagnostics(dir)
	if err != nil {
		return fmt.Errorf("noalloc: %v", err)
	}
	lineStarts := fileIndex(pass)
	for _, d := range diags {
		for i := range tagged {
			t := &tagged[i]
			if d.file != t.file || d.line < t.startLine || d.line > t.endLine {
				continue
			}
			pos := diagPos(pass.Fset, lineStarts[d.file], d.line, d.col)
			pass.Reportf(pos, "heap allocation in %s function %s: %s", Directive, t.name, d.msg)
			break
		}
	}
	return nil
}

// directiveComment returns the doc comment line carrying the directive.
func directiveComment(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if directiveLine(c.Text) {
			return c
		}
	}
	return nil
}

func directiveLine(text string) bool {
	return text == Directive || strings.HasPrefix(text, Directive+" ")
}

// funcName renders a function like the other analyzers: (Type).Method for
// methods, the bare name otherwise.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

// escapeDiag is one parsed -gcflags=-m line attributed to a source position.
type escapeDiag struct {
	file string // absolute path
	line int
	col  int
	msg  string
}

var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeDiagnostics compiles the package in dir and returns the heap-escape
// diagnostics the compiler attributes to it. The -gcflags value is unscoped,
// which the go tool applies to the named packages only — dependencies come
// from the build cache without diagnostics. -o discards the output so main
// packages do not drop binaries into the tree.
func escapeDiagnostics(dir string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "-o", os.DevNull, ".")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m in %s: %v\n%s", dir, err, out.String())
	}
	var diags []escapeDiag
	for _, line := range strings.Split(out.String(), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !heapEscape(msg) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, escapeDiag{file: filepath.Clean(file), line: ln, col: col, msg: msg})
	}
	return diags, nil
}

// heapEscape reports whether one -m message documents a heap allocation:
// "... escapes to heap" (but not "does not escape") and "moved to heap: x".
// Inlining reports, parameter leaks and non-escape proofs all pass.
func heapEscape(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// fileIndex maps each file's absolute path to its token.File, for converting
// compiler positions back into fset positions.
func fileIndex(pass *lint.Pass) map[string]*token.File {
	idx := make(map[string]*token.File, len(pass.Files))
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil {
			idx[tf.Name()] = tf
		}
	}
	return idx
}

// diagPos converts a (line, col) compiler position into a token.Pos in tf,
// clamping out-of-range values to the line start (or the file start).
func diagPos(fset *token.FileSet, tf *token.File, line, col int) token.Pos {
	if tf == nil {
		return token.NoPos
	}
	if line < 1 || line > tf.LineCount() {
		return tf.Pos(0)
	}
	pos := tf.LineStart(line)
	if off := tf.Offset(pos) + col - 1; col >= 1 && off < tf.Size() {
		pos = tf.Pos(off)
	}
	return pos
}
