// Package noallocpkg exercises the noalloc analyzer: true positives carry
// want comments, everything else is the false-positive-avoidance corpus.
package noallocpkg

// Sum is allocation-free: nothing here can escape.
//
//soda:noalloc
func Sum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// Grow returns a fresh slice: the make escapes.
//
//soda:noalloc
func Grow(n int) []int {
	return make([]int, n) // want `heap allocation in //soda:noalloc function Grow: make\(\[\]int, n\) escapes to heap`
}

// Escape leaks a local's address, so the local moves to the heap.
//
//soda:noalloc
func Escape() *int {
	x := 42 // want `heap allocation in //soda:noalloc function Escape: moved to heap: x`
	return &x
}

// Closure builds an escaping func value.
//
//soda:noalloc
func Closure(n int) func() int {
	return func() int { return n } // want `heap allocation in //soda:noalloc function Closure: func literal escapes to heap`
}

// Scratch allocates a buffer the compiler keeps on the stack: the -m output
// says "does not escape", which is not a finding.
//
//soda:noalloc
func Scratch(xs []int) int {
	buf := make([]int, 8)
	for i, v := range xs {
		buf[i&7] += v
	}
	return buf[0]
}

// Fill mutates a caller-owned slice in place: allocation-free.
//
//soda:noalloc
func Fill(dst []int, v int) []int {
	for i := range dst {
		dst[i] = v
	}
	return dst
}

// Untagged allocates freely; without the directive there is nothing to
// check.
func Untagged(n int) []int {
	return make([]int, n)
}

// Counter carries the method-shaped cases.
type Counter struct{ n int }

// Inc is allocation-free.
//
//soda:noalloc
func (c *Counter) Inc() { c.n++ }

// Box converts to an interface, which heap-allocates the boxed value.
//
//soda:noalloc
func (c *Counter) Box() any {
	return c.n // want `heap allocation in //soda:noalloc function \(Counter\)\.Box: c\.n escapes to heap`
}

//soda:noalloc // want `//soda:noalloc must be the doc comment of a function declaration`
type Misplaced struct{ n int }

// spanRing is a fixed-slot seqlock ring in the flight-recorder shape: a
// version word per slot plus packed payload words, written with plain
// stores here (the real ring uses atomics; escape analysis is identical).
type spanRing struct {
	version [8]uint64
	w0      [8]uint64
	w1      [8]uint64
	next    uint64
}

// record claims the next slot and stores the packed span in place — the
// flight-recorder hot path. Everything is fixed-size receiver state: no
// allocation.
//
//soda:noalloc
func (r *spanRing) record(start, dur uint64) {
	i := r.next & 7
	r.version[i]++
	r.w0[i] = start
	r.w1[i] = dur
	r.version[i]++
	r.next++
}

// snapshotSpans copies the ring out for exposition. The copy is the point —
// but it allocates, so it must never carry the noalloc tag.
//
//soda:noalloc
func (r *spanRing) snapshotSpans() [][2]uint64 {
	out := make([][2]uint64, 0, 8) // want `heap allocation in //soda:noalloc function \(spanRing\)\.snapshotSpans: make\(\[\]\[2\]uint64, 0, 8\) escapes to heap`
	for i := range r.w0 {
		out = append(out, [2]uint64{r.w0[i], r.w1[i]})
	}
	return out
}
