package noallocpkg

// helper is tagged in a test file, where the plain build's escape analysis
// cannot see it: the directive is reported as ignored instead of silently
// rotting.
//
//soda:noalloc // want `//soda:noalloc on helper is ignored in test files`
func helper() int { return 1 }
