package detrange_test

import (
	"testing"

	"repro/internal/lint/detrange"
	"repro/internal/lint/linttest"
)

func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, detrange.Analyzer, "core")
}

func TestOutsideCoreIsExempt(t *testing.T) {
	linttest.Run(t, detrange.Analyzer, "other")
}
