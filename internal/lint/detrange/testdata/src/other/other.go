// Package other is outside the deterministic core (its import path base is
// not in the deterministic set), so detrange must stay silent even on map
// ranges and multi-way selects.
package other

var m = map[string]int{"a": 1}

// Sum map-ranges freely: allowed outside the deterministic packages.
func Sum() int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Race is likewise allowed here.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
