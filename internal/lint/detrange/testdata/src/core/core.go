// Package core is a detrange fixture mimicking the deterministic solver
// package: its import path ends in "core", so every rule applies.
package core

import "sort"

var registry = map[string]int{"soda": 1, "bola": 2}

// SortedNames is the allowed idiom: key-only collection into a slice, then
// an explicit sort. No diagnostic.
func SortedNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SumValues iterates map values directly: the accumulation order is random.
func SumValues() int {
	sum := 0
	for _, v := range registry { // want `range over map in deterministic package core`
		sum += v
	}
	return sum
}

// FirstKey does extra work in a key-only body, so order still leaks.
func FirstKey() string {
	first := ""
	for name := range registry { // want `range over map in deterministic package core`
		if first == "" || name < first {
			first = name
		}
	}
	return first
}

// SliceRange iterates a slice: always ordered, no diagnostic.
func SliceRange(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}

// Race selects between two ready channels: the winner is random.
func Race(a, b chan int) int {
	select { // want `select with 2 communication cases in deterministic package core`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// NonBlocking is a single-case select with default: deterministic, allowed.
func NonBlocking(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}
