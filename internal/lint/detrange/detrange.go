// Package detrange flags nondeterministic iteration in the deterministic
// core of the SODA reproduction.
//
// The paper's controller is a pure function of its inputs: identical traces
// and configs must reproduce identical decisions, metrics and figures (that
// is what the golden-file experiment tests pin). Go deliberately randomizes
// two things that silently break this:
//
//   - iteration order of `range` over a map, and
//   - the case chosen by `select` when several communications are ready.
//
// Inside the deterministic packages (core, sim, oracle, qoe, baseline,
// experiments) detrange reports every map range whose body does anything
// beyond collecting keys into a slice, and every select with two or more
// communication clauses. The collect-keys idiom is exempt because its result
// order is laundered through an explicit sort before use — the repository's
// registry Names() pattern:
//
//	for name := range registry {   // allowed
//		names = append(names, name)
//	}
//	sort.Strings(names)
//
// Ranging over the map's values, or doing any other work in the body,
// executes effects in random order and is reported.
package detrange

import (
	"go/ast"
	"go/types"
	"path"

	"repro/internal/lint"
)

// Analyzer is the detrange analyzer.
var Analyzer = &lint.Analyzer{
	Name: "detrange",
	Doc: "flags range-over-map and multi-way select in the deterministic core; " +
		"key-collection into a slice (for later sorting) is allowed",
	Run: run,
}

// deterministicPackages are the final import-path elements of the packages
// whose behaviour must be bit-reproducible.
var deterministicPackages = map[string]bool{
	"core":        true,
	"sim":         true,
	"oracle":      true,
	"qoe":         true,
	"baseline":    true,
	"experiments": true,
}

func run(pass *lint.Pass) error {
	if !deterministicPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRange reports ranges over map-typed expressions unless they are the
// allowed key-collection idiom.
func checkRange(pass *lint.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isKeyCollection(rng) {
		return
	}
	pass.Reportf(rng.For,
		"range over map in deterministic package %s: iteration order is random; collect keys into a slice and sort, then index the map",
		path.Base(pass.Pkg.Path()))
}

// isKeyCollection reports whether the range is the allowed idiom: key-only
// iteration whose body is exactly one append of the key to a slice.
func isKeyCollection(rng *ast.RangeStmt) bool {
	if rng.Value != nil && !isBlank(rng.Value) {
		return false // the value's processing order would leak
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// checkSelect reports selects that can race between two or more ready
// communications (a lone case, with or without default, cannot).
func checkSelect(pass *lint.Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Select,
			"select with %d communication cases in deterministic package %s: the ready case is chosen at random",
			comms, path.Base(pass.Pkg.Path()))
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
