package oracle

import (
	"testing"

	"repro/internal/abr"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/video"

	_ "repro/internal/baseline"
	_ "repro/internal/core"

	"repro/internal/units"
)

func TestOracleValidation(t *testing.T) {
	tr := trace.Constant(units.Mbps(10), units.Seconds(100))
	if _, err := Solve(tr, Config{BufferCap: units.Seconds(20)}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := Solve(tr, Config{Ladder: video.Mobile(), BufferCap: units.Seconds(1)}); err == nil {
		t.Error("tiny cap accepted")
	}
	if _, err := Solve(tr, Config{Ladder: video.Mobile(), BufferCap: units.Seconds(20), SessionSeconds: units.Seconds(0.5)}); err == nil {
		t.Error("sub-segment session accepted")
	}
}

func TestOracleConstantLinkIsObvious(t *testing.T) {
	// On a constant 9 Mb/s link the clairvoyant optimum never stalls and
	// lives on the sustainable 7.5 Mb/s rung — except that under the QoE
	// weights (γ=1) a few planned excursions to 12 Mb/s, banking buffer at
	// the cap in between, are genuinely worth their switching cost. The
	// oracle finding this duty-cycle is evidence it optimizes the metric as
	// defined (and quantifies why the paper argues the switching term
	// under-prices real viewer annoyance, Fig. 1).
	tr := trace.Constant(units.Mbps(9), units.Seconds(400))
	res, err := Solve(tr, Config{Ladder: video.Mobile(), BufferCap: units.Seconds(20), SessionSeconds: units.Seconds(300)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RebufferRatio != 0 {
		t.Errorf("oracle stalled: %v", res.Metrics.RebufferRatio)
	}
	counts := map[int]int{}
	for _, r := range res.Rungs {
		counts[r]++
	}
	if counts[2]+counts[3] < len(res.Rungs)-1 {
		t.Errorf("oracle used unsustainably low rungs: %v", counts)
	}
	// The excursions must pay for themselves: QoE at least that of the
	// constant rung-2 schedule (utility 0.778, no stalls, no switches).
	if res.Metrics.Score < video.Mobile().LogUtility(2)-1e-9 {
		t.Errorf("oracle QoE %.4f below the trivial constant schedule", res.Metrics.Score)
	}
}

func TestOracleUpperBoundsControllers(t *testing.T) {
	// The clairvoyant score must (weakly) dominate every online controller
	// on the same sessions.
	ds, err := tracegen.Generate(tracegen.FourG(), 6, units.Seconds(300), 5)
	if err != nil {
		t.Fatal(err)
	}
	ladder := video.Mobile()
	for _, tr := range ds.Sessions {
		oracleRes, err := Solve(tr, Config{Ladder: ladder, BufferCap: units.Seconds(20), SessionSeconds: units.Seconds(300)})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"soda", "bola", "dynamic"} {
			ctrl, err := abr.New(name, ladder)
			if err != nil {
				t.Fatal(err)
			}
			online, err := sim.Run(tr, sim.Config{
				Ladder:         ladder,
				BufferCap:      units.Seconds(20),
				SessionSeconds: units.Seconds(300),
				Controller:     ctrl,
				Predictor:      predictor.NewEMA(units.Seconds(4)),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Allow a small slack: the oracle's DP discretizes the buffer and
			// approximates the clock, and its startup accounting differs by
			// one segment.
			if online.Metrics.Score > oracleRes.Metrics.Score+0.08 {
				t.Errorf("%s (%.4f) beat the oracle (%.4f)", name,
					online.Metrics.Score, oracleRes.Metrics.Score)
			}
		}
	}
}

func TestOracleAdaptsThroughFade(t *testing.T) {
	// Comfortable then collapsed bandwidth: the oracle must pre-position
	// (switch down before or at the fade) and avoid almost all stalls.
	tr := trace.New([]trace.Sample{{Duration: units.Seconds(60), Mbps: units.Mbps(12)}, {Duration: units.Seconds(120), Mbps: units.Mbps(1.8)}})
	res, err := Solve(tr, Config{Ladder: video.Mobile(), BufferCap: units.Seconds(20)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RebufferRatio > 0.01 {
		t.Errorf("oracle rebuffered %.4f through a foreseeable fade", res.Metrics.RebufferRatio)
	}
	// It must use low rungs during the fade and high before it.
	lows, highs := 0, 0
	for i, r := range res.Rungs {
		if i < 25 && r >= 2 {
			highs++
		}
		if i > 40 && r <= 1 {
			lows++
		}
	}
	if highs < 10 || lows < 20 {
		t.Errorf("oracle schedule unconvincing: highs=%d lows=%d rungs=%v", highs, lows, res.Rungs)
	}
}
