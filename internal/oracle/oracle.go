// Package oracle computes the clairvoyant QoE-optimal bitrate schedule for a
// session: the best sequence of rung choices achievable with full knowledge
// of the future bandwidth, under the exact player dynamics of internal/sim
// (buffer cap idling, startup, rebuffering).
//
// This is the "offline optimal" reference of the Sabre toolchain: it upper
// bounds every online controller and quantifies how much of the attainable
// QoE each controller realizes. The optimization is a dynamic program over
// (segment, previous rung, discretized buffer); within each step the exact
// continuous buffer dynamics are used, so discretization error appears only
// through the value-table lookup.
package oracle

import (
	"fmt"
	"math"

	"repro/internal/qoe"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// Config parameterizes the oracle.
type Config struct {
	Ladder    video.Ladder
	BufferCap units.Seconds
	// SessionSeconds is the stream length; 0 uses the trace duration.
	SessionSeconds units.Seconds
	// GridN is the buffer discretization (default 240).
	GridN int
	// Weights are the QoE weights (zero value = paper defaults).
	Weights qoe.Weights
	// Utility maps rung to [0,1]; nil = normalized log utility.
	Utility func(rung int) float64
}

// Result is the oracle's schedule and its realized QoE.
type Result struct {
	Rungs   []int
	Metrics qoe.Metrics
}

// Solve computes the clairvoyant optimal schedule for the trace.
//
// The DP maximizes Σ utility − β·(stallSec·N/(T·(N−1)))… more precisely it
// maximizes the per-session QoE score by charging each segment
// utility/N − β·stall/T_est − γ·switch/(N−1), with T_est = N·L (stall time
// second-order-corrects the denominator; for the sub-percent stall ratios of
// interest the approximation error is negligible and the returned Metrics
// are recomputed exactly by replaying the schedule).
func Solve(tr *trace.Trace, cfg Config) (Result, error) {
	if cfg.Ladder.Len() == 0 {
		return Result{}, fmt.Errorf("oracle: empty ladder")
	}
	if cfg.BufferCap < cfg.Ladder.SegmentSeconds {
		return Result{}, fmt.Errorf("oracle: buffer cap below one segment")
	}
	l := cfg.Ladder.SegmentSeconds
	session := cfg.SessionSeconds
	if session <= 0 {
		session = tr.Duration()
	}
	n := int(session / l)
	if n < 1 {
		return Result{}, fmt.Errorf("oracle: session shorter than one segment")
	}
	gridN := cfg.GridN
	if gridN <= 0 {
		gridN = 240
	}
	weights := cfg.Weights
	if weights == (qoe.Weights{}) {
		weights = qoe.DefaultWeights()
	}
	utility := cfg.Utility
	if utility == nil {
		utility = cfg.Ladder.LogUtility
	}
	nr := cfg.Ladder.Len()

	// State: the stream clock and buffer are coupled (clock = played +
	// stalls + idles). To keep the DP finite we track the buffer and the
	// clock approximately via the invariant clock ≈ seg*L − buffer + stalls;
	// downloads are priced at the bandwidth around that approximate clock.
	// The approximation is exact on constant-rate spans and good when
	// bandwidth varies on multi-second scales, which the generated traces do.
	bucketOf := func(x units.Seconds) int {
		b := int(x / cfg.BufferCap * units.Seconds(gridN-1))
		if b < 0 {
			b = 0
		}
		if b >= gridN {
			b = gridN - 1
		}
		return b
	}
	xOf := func(b int) units.Seconds { return units.Seconds(b) / units.Seconds(gridN-1) * cfg.BufferCap }

	const neg = -math.MaxFloat64 / 4
	// value[r][b]: best attainable future score from segment seg with
	// previous rung r (nr = none) and buffer bucket b. Iterate backward.
	value := make([][]float64, nr+1)
	next := make([][]float64, nr+1)
	choice := make([][][]int8, n)
	for r := 0; r <= nr; r++ {
		value[r] = make([]float64, gridN)
		next[r] = make([]float64, gridN)
	}
	for seg := 0; seg < n; seg++ {
		choice[seg] = make([][]int8, nr+1)
		for r := 0; r <= nr; r++ {
			choice[seg][r] = make([]int8, gridN)
		}
	}

	segScore := func(seg, rung, prev int, buffer units.Seconds) (float64, units.Seconds, bool) {
		// Approximate stream clock at this state.
		clock := units.Seconds(seg)*l - buffer
		if clock < 0 {
			clock = 0
		}
		size := cfg.Ladder.SegmentMegabits(rung)
		dl, err := tr.DownloadTime(clock, size)
		if err != nil {
			return 0, 0, false
		}
		stall := units.Seconds(math.Max(0, float64(dl-buffer)))
		nb := units.Seconds(math.Max(float64(buffer-dl), 0)) + l
		if nb > cfg.BufferCap {
			nb = cfg.BufferCap // the player idles at the cap
		}
		score := utility(rung) / float64(n)
		score -= weights.Beta * float64(stall) / (float64(n) * float64(l))
		if prev >= 0 && prev != rung && n > 1 {
			score -= weights.Gamma / float64(n-1)
		}
		return score, nb, true
	}

	for seg := n - 1; seg >= 0; seg-- {
		for r := 0; r <= nr; r++ {
			prev := r
			if r == nr {
				prev = -1
			}
			for b := 0; b < gridN; b++ {
				best := neg
				var bestR int8
				x := xOf(b)
				for rung := 0; rung < nr; rung++ {
					s, nb, ok := segScore(seg, rung, prev, x)
					if !ok {
						continue
					}
					total := s + value[rung][bucketOf(nb)]
					if total > best {
						best = total
						bestR = int8(rung)
					}
				}
				next[r][b] = best
				choice[seg][r][b] = bestR
			}
		}
		value, next = next, value
	}

	// Replay the policy with exact continuous state to extract the schedule
	// and its true metrics.
	var tally qoe.SessionTally
	buffer := units.Seconds(0)
	clock := units.Seconds(0)
	playing := false
	prev := -1
	rungs := make([]int, 0, n)
	for seg := 0; seg < n; seg++ {
		if over := buffer + l - cfg.BufferCap; over > 1e-9 {
			clock += over
			buffer -= over
			tally.AddPlayback(over)
		}
		idx := prev
		if prev < 0 {
			idx = nr
		}
		rung := int(choice[seg][idx][bucketOf(buffer)])
		size := cfg.Ladder.SegmentMegabits(rung)
		dl, err := tr.DownloadTime(clock, size)
		if err != nil {
			return Result{}, fmt.Errorf("oracle: replay segment %d: %w", seg, err)
		}
		clock += dl
		if !playing {
			tally.AddStartup(dl)
			playing = true
		} else {
			played := units.Seconds(math.Min(float64(dl), float64(buffer)))
			buffer -= played
			tally.AddPlayback(played)
			if stall := dl - played; stall > 1e-12 {
				tally.AddRebuffer(stall)
			}
		}
		buffer += l
		tally.AddSegment(rung, utility(rung))
		prev = rung
		rungs = append(rungs, rung)
	}
	tally.AddPlayback(buffer)
	return Result{Rungs: rungs, Metrics: tally.Finalize(weights)}, nil
}
