// Package prod simulates the paper's production deployment study (§6.3):
// large-scale A/B experiments on Amazon Prime Video live streams across
// three device families — desktops/laptops (HTML5 browsers), smart TVs and
// set-top boxes — comparing SODA against a fine-tuned production baseline.
//
// Each device family has its own network profile (HTML5 browsers experience
// the most volatility, §6.3), sessions are randomly assigned to the SODA or
// control arm, and the engagement model converts per-session quality into
// viewing durations. The report is the set of relative changes Figure 13
// plots: mean viewing duration, mean bitrate, rebuffering ratio and
// switching rate.
package prod

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/engagement"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
	"repro/internal/units"
	"repro/internal/video"

	// The control arm ("prod-baseline") is resolved by name from the abr
	// registry, so the implementation must be linked in.
	_ "repro/internal/baseline"
)

// DeviceFamily describes one device population and its network conditions.
type DeviceFamily struct {
	Name    string
	Profile tracegen.Profile
}

// Families returns the three §6.3 device families. The relative volatility
// ordering follows the paper: HTML5 browsers see the most volatile networks,
// set-top boxes (often wired) the most stable, smart TVs in between.
func Families() []DeviceFamily {
	html5 := tracegen.Profile{
		Name:           "html5",
		TargetMeanMbps: 18,
		TargetRSD:      0.95,
		States:         []tracegen.State{{RelMean: 1.7}, {RelMean: 0.9}, {RelMean: 0.3}},
		Transition: [][]float64{
			{0.9880, 0.0100, 0.0020},
			{0.0120, 0.9760, 0.0120},
			{0.0080, 0.0160, 0.9760},
		},
		StepSeconds: 1,
		AR:          0.90,
	}
	smartTV := tracegen.Profile{
		Name:           "smarttv",
		TargetMeanMbps: 22,
		TargetRSD:      0.55,
		States:         []tracegen.State{{RelMean: 1.3}, {RelMean: 0.9}, {RelMean: 0.5}},
		Transition: [][]float64{
			{0.9930, 0.0060, 0.0010},
			{0.0080, 0.9870, 0.0050},
			{0.0050, 0.0110, 0.9840},
		},
		StepSeconds: 1,
		AR:          0.93,
	}
	setTop := tracegen.Profile{
		Name:           "settop",
		TargetMeanMbps: 26,
		TargetRSD:      0.40,
		States:         []tracegen.State{{RelMean: 1.2}, {RelMean: 0.95}, {RelMean: 0.6}},
		Transition: [][]float64{
			{0.9950, 0.0040, 0.0010},
			{0.0060, 0.9900, 0.0040},
			{0.0040, 0.0080, 0.9880},
		},
		StepSeconds: 1,
		AR:          0.95,
	}
	return []DeviceFamily{
		{Name: "html5", Profile: html5},
		{Name: "smarttv", Profile: smartTV},
		{Name: "settop", Profile: setTop},
	}
}

// Config drives one A/B experiment.
type Config struct {
	// SessionsPerArm is the number of sessions per controller arm per family.
	SessionsPerArm int
	// SessionLength is the simulated session length.
	SessionLength units.Seconds
	// StreamLength is the live event length used for viewing durations
	// (sports events routinely span multiple hours, §6.3).
	StreamLength units.Minutes
	// BufferCap is the live buffer bound (20 s in the deployment).
	BufferCap units.Seconds
	// Treatment and Control name the registered controllers for the two
	// arms ("soda" and "prod-baseline" by default).
	Treatment, Control string
	// SharedCacheEntries sizes the fleet-wide solve cache each SODA arm's
	// sessions share (one cache per family per arm, as a deployment would
	// shard per ladder/config). 0 disables sharing. Decisions are
	// bit-identical either way, so the A/B outcome is unaffected; the knob
	// only changes how much solver work the arm performs.
	SharedCacheEntries int
	// TableQuantum enables compiled decision tables on the SODA arm at that
	// quantization step (one table set per family per arm, beside the solve
	// cache). Tables change where decisions come from, not what they are —
	// in-domain states read the compiled map, everything else solves — so the
	// A/B outcome at a given quantum is a function of the quantum alone.
	// 0 disables tables and keeps the arm on the exact MemoQuantum path the
	// Figure 13 goldens were recorded with.
	TableQuantum float64
	// Seed makes the experiment reproducible.
	Seed uint64
	// Telemetry, when non-nil, receives per-arm gauges (viewing, bitrate,
	// rebuffer/switch rates, cache hit ratio) labelled by family and arm as
	// each family completes, so a live A/B divergence is visible on /metrics
	// before the run finishes. Recording happens after the arms ran — it can
	// never perturb the experiment.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the experiment configuration used by the Figure 13
// bench.
func DefaultConfig() Config {
	return Config{
		SessionsPerArm:     40,
		SessionLength:      units.Seconds(600),
		StreamLength:       units.Minutes(150),
		BufferCap:          units.Seconds(20),
		Treatment:          "soda",
		Control:            "prod-baseline",
		SharedCacheEntries: 1 << 15,
		Seed:               2024,
	}
}

// ArmStats are the per-arm session aggregates.
type ArmStats struct {
	Controller    string
	Viewing       units.Minutes
	MeanBitrate   units.Mbps
	RebufferRatio float64
	SwitchRate    float64
	Sessions      int
	// Cache is the arm's shared solve-cache traffic; zero-valued (Lookups 0)
	// when the arm ran without one.
	Cache core.CacheStats
}

// Record publishes the arm aggregates as gauges on reg, labelled by device
// family and arm ("treatment"/"control"). Harnesses call it after the arm
// completed — the pull-based pattern the telemetry purity contract requires.
func (s ArmStats) Record(reg *telemetry.Registry, family, arm string) {
	if reg == nil {
		return
	}
	labels := []telemetry.Label{
		{Key: "family", Value: family},
		{Key: "arm", Value: arm},
		{Key: "controller", Value: s.Controller},
	}
	reg.Gauge("soda_ab_viewing_minutes", "mean viewing duration of the arm",
		telemetry.UMinutes, labels...).Set(float64(s.Viewing))
	reg.Gauge("soda_ab_bitrate_mbps", "mean delivered bitrate of the arm",
		telemetry.UMbps, labels...).Set(float64(s.MeanBitrate))
	reg.Gauge("soda_ab_rebuffer_ratio", "mean rebuffer ratio of the arm",
		telemetry.None, labels...).Set(s.RebufferRatio)
	reg.Gauge("soda_ab_switch_rate", "mean rung-switch rate of the arm",
		telemetry.None, labels...).Set(s.SwitchRate)
	reg.Gauge("soda_ab_sessions", "sessions simulated in the arm",
		telemetry.None, labels...).Set(float64(s.Sessions))
	if s.Cache.Lookups > 0 {
		reg.Gauge("soda_ab_shared_cache_hit_ratio", "shared solve-cache hit ratio of the arm",
			telemetry.None, labels...).Set(s.Cache.HitRate())
	}
}

// FamilyReport is one device family's A/B outcome: the Figure 13 bars.
type FamilyReport struct {
	Family    string
	Treatment ArmStats
	Control   ArmStats
	// Relative changes, treatment vs control, as fractions (+0.059 = +5.9%).
	ViewingDelta  float64
	BitrateDelta  float64
	RebufferDelta float64
	SwitchDelta   float64
}

// String renders the report row.
func (r FamilyReport) String() string {
	return fmt.Sprintf("%-8s viewing %+6.2f%%  bitrate %+6.2f%%  rebuf %+7.2f%%  switching %+7.2f%%",
		r.Family, 100*r.ViewingDelta, 100*r.BitrateDelta, 100*r.RebufferDelta, 100*r.SwitchDelta)
}

// Run executes the A/B experiment across all device families.
func Run(cfg Config) ([]FamilyReport, error) {
	if cfg.SessionsPerArm <= 0 {
		return nil, fmt.Errorf("prod: non-positive sessions per arm")
	}
	ladder := video.PrimeVideo()
	model := engagement.Default()
	var reports []FamilyReport
	for fi, fam := range Families() {
		ds, err := tracegen.Generate(fam.Profile, cfg.SessionsPerArm, cfg.SessionLength, cfg.Seed+uint64(fi)*1000)
		if err != nil {
			return nil, fmt.Errorf("prod: %s: %w", fam.Name, err)
		}
		// Both arms share the engagement random draws (common random
		// numbers): each session index gets the same uniform variate, so the
		// viewing-duration delta reflects the quality difference rather than
		// sampling noise — the standard variance-reduction device for paired
		// A/B comparisons.
		treat, err := runArm(cfg, cfg.Treatment, ladder, ds, model, cfg.Seed+77, armCache(cfg, cfg.Treatment), armTables(cfg, cfg.Treatment))
		if err != nil {
			return nil, fmt.Errorf("prod: %s/%s: %w", fam.Name, cfg.Treatment, err)
		}
		control, err := runArm(cfg, cfg.Control, ladder, ds, model, cfg.Seed+77, armCache(cfg, cfg.Control), armTables(cfg, cfg.Control))
		if err != nil {
			return nil, fmt.Errorf("prod: %s/%s: %w", fam.Name, cfg.Control, err)
		}
		treat.Record(cfg.Telemetry, fam.Name, "treatment")
		control.Record(cfg.Telemetry, fam.Name, "control")
		reports = append(reports, FamilyReport{
			Family:        fam.Name,
			Treatment:     treat,
			Control:       control,
			ViewingDelta:  rel(treat.Viewing, control.Viewing),
			BitrateDelta:  rel(treat.MeanBitrate, control.MeanBitrate),
			RebufferDelta: relRebuffer(treat.RebufferRatio, control.RebufferRatio),
			SwitchDelta:   rel(treat.SwitchRate, control.SwitchRate),
		})
	}
	return reports, nil
}

// relRebuffer treats two essentially-rebuffer-free arms as unchanged: a
// ratio of two numbers in the 1e-5 range is noise, not a finding.
func relRebuffer(treat, control float64) float64 {
	const negligible = 5e-4
	if treat < negligible && control < negligible {
		return 0
	}
	return rel(treat, control)
}

func rel[T ~float64](treat, control T) float64 {
	if control == 0 {
		if treat == 0 {
			return 0
		}
		return 1
	}
	return float64((treat - control) / control)
}

// armCache builds the fleet solve cache for one arm of one family, or nil
// when sharing is disabled or the arm's controller cannot use one ("soda" is
// the only registered controller with a shared-cache hook).
func armCache(cfg Config, controller string) *core.SolveCache {
	if cfg.SharedCacheEntries <= 0 || controller != "soda" {
		return nil
	}
	return core.NewSolveCache(cfg.SharedCacheEntries)
}

// armTables builds the compiled-table set for one arm of one family, or nil
// when tables are disabled or the arm's controller has no table hook.
func armTables(cfg Config, controller string) *core.DecisionTables {
	if cfg.TableQuantum <= 0 || controller != "soda" {
		return nil
	}
	return core.NewDecisionTables()
}

// newArmController builds a fresh per-session controller for the arm,
// attaching the shared solve cache and table set when they apply. The
// augmented construction is the registry's "soda" configuration plus the
// fleet state, so the two paths decide identically (tables additionally
// move the arm to TableQuantum).
func newArmController(controller string, ladder video.Ladder, cache *core.SolveCache, tables *core.DecisionTables, tableQuantum float64) (abr.Controller, error) {
	if cache != nil || tables != nil {
		ccfg := core.DefaultConfig()
		ccfg.SharedCache = cache
		ccfg.DecisionTable = tables
		ccfg.TableQuantum = tableQuantum
		return core.New(ccfg, ladder), nil
	}
	return abr.New(controller, ladder)
}

// runArm simulates every session of the dataset under one controller and
// aggregates the arm statistics. Sessions run in parallel; the engagement
// draw is deterministic per (seed, session).
func runArm(cfg Config, controller string, ladder video.Ladder, ds *tracegen.Dataset, model engagement.Model, seed uint64, cache *core.SolveCache, tables *core.DecisionTables) (ArmStats, error) {
	n := len(ds.Sessions)
	type out struct {
		viewing   units.Minutes
		bitrate   units.Mbps
		rebuf, sw float64
		err       error
	}
	results := make([]out, n)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ctrl, err := newArmController(controller, ladder, cache, tables, cfg.TableQuantum)
				if err != nil {
					results[i].err = err
					continue
				}
				res, err := sim.Run(ds.Sessions[i], sim.Config{
					Ladder:         ladder,
					BufferCap:      cfg.BufferCap,
					SessionSeconds: cfg.SessionLength,
					Controller:     ctrl,
					Predictor:      predictor.NewSlidingWindow(units.Seconds(12)),
				})
				if err != nil {
					results[i].err = err
					continue
				}
				m := res.Metrics
				rng := rand.New(rand.NewPCG(seed, uint64(i)))
				results[i].viewing = model.SampleViewingMinutes(m.SwitchRate, m.RebufferRatio, cfg.StreamLength, rng)
				results[i].bitrate = meanBitrate(ladder, res.Rungs)
				results[i].rebuf = m.RebufferRatio
				results[i].sw = m.SwitchRate
			}
		}()
	}
	wg.Wait()
	stats := ArmStats{Controller: controller, Sessions: n}
	for i := range results {
		if results[i].err != nil {
			return ArmStats{}, results[i].err
		}
		stats.Viewing += results[i].viewing
		stats.MeanBitrate += results[i].bitrate
		stats.RebufferRatio += results[i].rebuf
		stats.SwitchRate += results[i].sw
	}
	f := float64(n)
	stats.Viewing = units.Minutes(float64(stats.Viewing) / f)
	stats.MeanBitrate = units.Mbps(float64(stats.MeanBitrate) / f)
	stats.RebufferRatio /= f
	stats.SwitchRate /= f
	if cache != nil {
		stats.Cache = cache.Stats()
	}
	return stats, nil
}

func meanBitrate(ladder video.Ladder, rungs []int) units.Mbps {
	if len(rungs) == 0 {
		return 0
	}
	var sum units.Mbps
	for _, r := range rungs {
		sum += ladder.Mbps(r)
	}
	return units.Mbps(float64(sum) / float64(len(rungs)))
}
