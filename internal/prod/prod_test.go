package prod

import (
	"strings"
	"testing"

	// Controller registrations.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

func TestFamiliesValid(t *testing.T) {
	fams := Families()
	if len(fams) != 3 {
		t.Fatalf("families = %d", len(fams))
	}
	for _, f := range fams {
		if err := f.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
	// Volatility ordering: html5 most volatile, set-top least (§6.3).
	if !(fams[0].Profile.TargetRSD > fams[1].Profile.TargetRSD &&
		fams[1].Profile.TargetRSD > fams[2].Profile.TargetRSD) {
		t.Error("device family volatility ordering violated")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SessionsPerArm = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero sessions accepted")
	}
	cfg = DefaultConfig()
	cfg.Treatment = "no-such-controller"
	cfg.SessionsPerArm = 2
	cfg.SessionLength = 60
	if _, err := Run(cfg); err == nil {
		t.Error("unknown treatment controller accepted")
	}
}

func TestABExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B experiment is slow")
	}
	cfg := DefaultConfig()
	cfg.SessionsPerArm = 10
	cfg.SessionLength = 300
	reports, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.Treatment.Sessions != 10 || r.Control.Sessions != 10 {
			t.Errorf("%s: arm sizes %d/%d", r.Family, r.Treatment.Sessions, r.Control.Sessions)
		}
		// SODA's headline production result: substantially less switching
		// than the tuned baseline on every family (Fig. 13).
		if r.SwitchDelta >= 0 {
			t.Errorf("%s: switching delta %+.1f%%, want negative", r.Family, 100*r.SwitchDelta)
		}
		// And no viewing-duration regression.
		if r.ViewingDelta < -0.05 {
			t.Errorf("%s: viewing delta %+.1f%%", r.Family, 100*r.ViewingDelta)
		}
		if !strings.Contains(r.String(), r.Family) {
			t.Errorf("report string %q", r.String())
		}
	}
}

func TestRelHelper(t *testing.T) {
	if rel(110.0, 100.0) != 0.1 {
		t.Errorf("rel = %v", rel(110.0, 100.0))
	}
	if rel(0.0, 0.0) != 0 || rel(5.0, 0.0) != 1 {
		t.Error("degenerate rel cases")
	}
}
