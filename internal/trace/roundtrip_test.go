package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/units"
)

// awkwardTrace carries values with no short decimal representation, so the
// round trips below prove the writers emit shortest-uniquely-decodable
// decimals rather than truncating.
func awkwardTrace() *Trace {
	return New([]Sample{
		{Duration: units.Seconds(1.0 / 3.0), Mbps: units.Mbps(math.Pi)},
		{Duration: units.Seconds(0.145), Mbps: units.Mbps(57.3)},
		{Duration: units.Seconds(2), Mbps: units.Mbps(0.2)},
		{Duration: units.Seconds(math.Nextafter(4, 5)), Mbps: units.Mbps(1e-3)},
	})
}

// assertBitIdentical compares two traces sample by sample at the bit level:
// the typed->float64->typed trip through a wire format must not move any
// value, because float64(unit) and unit(float64) share the representation.
func assertBitIdentical(t *testing.T, format string, got, want *Trace) {
	t.Helper()
	gs, ws := got.Samples(), want.Samples()
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d samples, want %d", format, len(gs), len(ws))
	}
	for i := range ws {
		if math.Float64bits(float64(gs[i].Duration)) != math.Float64bits(float64(ws[i].Duration)) {
			t.Errorf("%s: sample %d duration = %v, want %v (bit-exact)", format, i, gs[i].Duration, ws[i].Duration)
		}
		if math.Float64bits(float64(gs[i].Mbps)) != math.Float64bits(float64(ws[i].Mbps)) {
			t.Errorf("%s: sample %d mbps = %v, want %v (bit-exact)", format, i, gs[i].Mbps, ws[i].Mbps)
		}
	}
}

// TestCSVRoundTripLossless pins the wire-boundary contract for the CSV
// interchange format.
func TestCSVRoundTripLossless(t *testing.T) {
	orig := awkwardTrace()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "csv", back, orig)
}

// TestJSONRoundTripLossless pins the same contract for the JSON format.
func TestJSONRoundTripLossless(t *testing.T) {
	orig := awkwardTrace()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "json", back, orig)
}
