// Package trace models network throughput traces: piecewise-constant
// bandwidth functions of time, exactly as consumed by the ABR simulator and
// the trace-shaped TCP prototype.
//
// The package supports the operations the paper's evaluation needs:
//
//   - integrating bandwidth over time to compute segment download times
//     (the simulator's core primitive),
//   - slicing long captures into fixed-length sessions (the paper splits its
//     datasets into consecutive 10-minute sessions, §6.1.1),
//   - computing per-session mean throughput and relative standard deviation
//     (used to bucket the Puffer dataset into variance quartiles, Fig. 10),
//   - reading and writing a simple CSV interchange format.
//
// Traces wrap around: a download that runs past the end of the trace continues
// from the beginning, mirroring the behaviour of the Sabre simulator the
// paper's evaluation is built on.
//
//soda:wire-boundary
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/units"
)

// Sample is one piecewise-constant span of a trace: the link sustains Mbps
// for Duration seconds.
type Sample struct {
	Duration units.Seconds // > 0
	Mbps     units.Mbps    // >= 0
}

// Trace is a piecewise-constant bandwidth function of time.
// The zero value is an empty trace; use New or Append to build one.
type Trace struct {
	samples []Sample
	total   units.Seconds // cached total duration
}

// New builds a trace from samples. It panics if any sample is invalid;
// use Validate for error-returning checks on untrusted input.
func New(samples []Sample) *Trace {
	t := &Trace{}
	for _, s := range samples {
		t.Append(s)
	}
	return t
}

// Constant returns a trace holding mbps for the given duration.
func Constant(mbps units.Mbps, duration units.Seconds) *Trace {
	return New([]Sample{{Duration: duration, Mbps: mbps}})
}

// Append adds one sample to the end of the trace.
// It panics on non-positive duration or negative bandwidth.
func (t *Trace) Append(s Sample) {
	if s.Duration <= 0 {
		panic(fmt.Sprintf("trace: non-positive sample duration %v", s.Duration))
	}
	if s.Mbps < 0 || math.IsNaN(float64(s.Mbps)) || math.IsInf(float64(s.Mbps), 0) {
		panic(fmt.Sprintf("trace: invalid bandwidth %v", s.Mbps))
	}
	t.samples = append(t.samples, s)
	t.total += s.Duration
}

// Samples returns the underlying samples. The slice must not be modified.
func (t *Trace) Samples() []Sample { return t.samples }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.samples) }

// Duration returns the total duration of the trace.
func (t *Trace) Duration() units.Seconds { return t.total }

// BandwidthAt returns the bandwidth at time tsec. The trace wraps:
// times beyond Duration() map back into the trace, and negative times map
// from the end. An empty trace reports 0.
func (t *Trace) BandwidthAt(tsec units.Seconds) units.Mbps {
	if len(t.samples) == 0 || t.total == 0 {
		return 0
	}
	tt := units.Seconds(math.Mod(float64(tsec), float64(t.total)))
	if tt < 0 {
		tt += t.total
	}
	for _, s := range t.samples {
		if tt < s.Duration {
			return s.Mbps
		}
		tt -= s.Duration
	}
	return t.samples[len(t.samples)-1].Mbps
}

// MeanOver returns the average bandwidth over [start, start+length), with
// wrap-around. It returns 0 for an empty trace or non-positive length.
func (t *Trace) MeanOver(start, length units.Seconds) units.Mbps {
	if len(t.samples) == 0 || length <= 0 {
		return 0
	}
	return t.TransferableMegabits(start, length).Over(length)
}

// TransferableMegabits integrates bandwidth over [start, start+length),
// returning the number of megabits the link can carry in that window.
func (t *Trace) TransferableMegabits(start, length units.Seconds) units.Megabits {
	if len(t.samples) == 0 || length <= 0 || t.total == 0 {
		return 0
	}
	pos := units.Seconds(math.Mod(float64(start), float64(t.total)))
	if pos < 0 {
		pos += t.total
	}
	// Locate the sample containing pos.
	idx := 0
	off := pos
	for off >= t.samples[idx].Duration {
		off -= t.samples[idx].Duration
		idx++
	}
	remaining := length
	megabits := units.Megabits(0)
	for remaining > 0 {
		s := t.samples[idx]
		span := s.Duration - off
		if span > remaining {
			span = remaining
		}
		megabits += s.Mbps.MegabitsIn(span)
		remaining -= span
		off = 0
		idx++
		if idx == len(t.samples) {
			idx = 0
		}
	}
	return megabits
}

// ErrStalled is returned by DownloadTime when the link carries no data for an
// entire wrap of the trace (all-zero bandwidth), so the transfer can never
// complete.
var ErrStalled = errors.New("trace: zero-bandwidth trace cannot complete transfer")

// DownloadTime returns the number of seconds needed to transfer megabits of
// data starting at time start, integrating the piecewise-constant bandwidth
// with wrap-around.
func (t *Trace) DownloadTime(start units.Seconds, megabits units.Megabits) (units.Seconds, error) {
	if megabits <= 0 {
		return 0, nil
	}
	if len(t.samples) == 0 || t.total == 0 {
		return 0, ErrStalled
	}
	pos := units.Seconds(math.Mod(float64(start), float64(t.total)))
	if pos < 0 {
		pos += t.total
	}
	idx := 0
	off := pos
	for off >= t.samples[idx].Duration {
		off -= t.samples[idx].Duration
		idx++
	}
	elapsed := units.Seconds(0)
	remaining := megabits
	zeroRun := units.Seconds(0) // consecutive time of zero bandwidth observed
	for {
		s := t.samples[idx]
		span := s.Duration - off
		if s.Mbps > 0 {
			zeroRun = 0
			capacity := s.Mbps.MegabitsIn(span)
			if capacity >= remaining {
				return elapsed + remaining.AtRate(s.Mbps), nil
			}
			remaining -= capacity
		} else {
			zeroRun += span
			if zeroRun >= t.total {
				return 0, ErrStalled
			}
		}
		elapsed += span
		off = 0
		idx++
		if idx == len(t.samples) {
			idx = 0
		}
	}
}

// Slice returns a copy of the trace covering [start, start+length), with
// wrap-around. The result has its own sample storage.
func (t *Trace) Slice(start, length units.Seconds) *Trace {
	out := &Trace{}
	if len(t.samples) == 0 || length <= 0 {
		return out
	}
	pos := units.Seconds(math.Mod(float64(start), float64(t.total)))
	if pos < 0 {
		pos += t.total
	}
	idx := 0
	off := pos
	for off >= t.samples[idx].Duration {
		off -= t.samples[idx].Duration
		idx++
	}
	remaining := length
	for remaining > 1e-12 {
		s := t.samples[idx]
		span := s.Duration - off
		if span > remaining {
			span = remaining
		}
		out.Append(Sample{Duration: span, Mbps: s.Mbps})
		remaining -= span
		off = 0
		idx++
		if idx == len(t.samples) {
			idx = 0
		}
	}
	return out
}

// SplitSessions cuts the trace into consecutive sessions of sessionSeconds
// each, discarding any final partial session, mirroring the paper's dataset
// preparation (§6.1.1: sessions shorter than the window are filtered out and
// long captures are divided into consecutive fixed-length sessions).
func (t *Trace) SplitSessions(session units.Seconds) []*Trace {
	if session <= 0 || t.total < session {
		return nil
	}
	n := int(t.total / session)
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.Slice(units.Seconds(i)*session, session))
	}
	return out
}

// Scale returns a copy of the trace with all bandwidths multiplied by f.
func (t *Trace) Scale(f float64) *Trace {
	out := &Trace{}
	for _, s := range t.samples {
		out.Append(Sample{Duration: s.Duration, Mbps: s.Mbps * units.Mbps(f)})
	}
	return out
}

// MeanMbps returns the duration-weighted mean bandwidth of the whole trace.
func (t *Trace) MeanMbps() units.Mbps {
	if t.total == 0 {
		return 0
	}
	sum := units.Megabits(0)
	for _, s := range t.samples {
		sum += s.Mbps.MegabitsIn(s.Duration)
	}
	return sum.Over(t.total)
}

// RSD returns the duration-weighted relative standard deviation of bandwidth:
// the volatility measure the paper uses to split the Puffer dataset into
// quartiles (Fig. 10) and to characterize datasets (Fig. 9).
func (t *Trace) RSD() float64 {
	m := t.MeanMbps()
	if m == 0 || t.total == 0 {
		return 0
	}
	ss := 0.0
	for _, s := range t.samples {
		d := float64(s.Mbps - m)
		ss += d * d * float64(s.Duration)
	}
	return math.Sqrt(ss/float64(t.total)) / float64(m)
}

// MinMbps returns the smallest bandwidth in the trace, or 0 when empty.
func (t *Trace) MinMbps() units.Mbps {
	if len(t.samples) == 0 {
		return 0
	}
	m := t.samples[0].Mbps
	for _, s := range t.samples[1:] {
		if s.Mbps < m {
			m = s.Mbps
		}
	}
	return m
}

// Validate checks the trace invariants (positive durations, finite
// non-negative bandwidths, cached total consistent with the samples).
func (t *Trace) Validate() error {
	sum := units.Seconds(0)
	for i, s := range t.samples {
		if s.Duration <= 0 {
			return fmt.Errorf("trace: sample %d has non-positive duration %v", i, s.Duration)
		}
		if s.Mbps < 0 || math.IsNaN(float64(s.Mbps)) || math.IsInf(float64(s.Mbps), 0) {
			return fmt.Errorf("trace: sample %d has invalid bandwidth %v", i, s.Mbps)
		}
		sum += s.Duration
	}
	if math.Abs(float64(sum-t.total)) > 1e-6 {
		return fmt.Errorf("trace: cached duration %v != sum %v", t.total, sum)
	}
	return nil
}

// WriteCSV writes the trace as "duration_s,mbps" lines with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "duration_s,mbps"); err != nil {
		return err
	}
	for _, s := range t.samples {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", float64(s.Duration), float64(s.Mbps)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace from the format written by WriteCSV. A header line
// is optional. Blank lines and lines starting with '#' are ignored.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(strings.ToLower(line), "duration") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", lineNo, len(parts))
		}
		dur, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad duration: %w", lineNo, err)
		}
		mbps, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad bandwidth: %w", lineNo, err)
		}
		if dur <= 0 || mbps < 0 {
			return nil, fmt.Errorf("trace: line %d: invalid sample (%g s, %g Mbps)", lineNo, dur, mbps)
		}
		t.Append(Sample{Duration: units.Seconds(dur), Mbps: units.Mbps(mbps)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Bandwidths returns the per-sample bandwidth values (unweighted), useful for
// histograms and summary statistics over uniformly sampled traces.
func (t *Trace) Bandwidths() []float64 {
	out := make([]float64, len(t.samples))
	for i, s := range t.samples {
		out[i] = float64(s.Mbps)
	}
	return out
}

// Summary returns descriptive statistics of the per-sample bandwidths.
func (t *Trace) Summary() stats.Summary { return stats.Summarize(t.Bandwidths()) }
