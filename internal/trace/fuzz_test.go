package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser is total over arbitrary text and that
// accepted traces satisfy the package invariants.
func FuzzReadCSV(f *testing.F) {
	f.Add("duration_s,mbps\n1,5\n2,0\n")
	f.Add("# comment\n0.5,100\n")
	f.Add("garbage")
	f.Add("1,2,3\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace invalid: %v", err)
		}
		// Accepted traces round-trip through the writer.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip length %d vs %d", back.Len(), tr.Len())
		}
	})
}

// FuzzReadJSON mirrors FuzzReadCSV for the JSON format.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"samples":[{"duration_s":1,"mbps":5}]}`)
	f.Add(`{"samples":[]}`)
	f.Add(`nonsense`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace invalid: %v", err)
		}
	})
}
