package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := figure4Trace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"duration_s"`) {
		t.Errorf("unexpected JSON shape: %s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || math.Abs(float64(back.Duration()-tr.Duration())) > 1e-9 {
		t.Fatalf("round trip: %d samples, %v s", back.Len(), back.Duration())
	}
	for i := range back.Samples() {
		if back.Samples()[i] != tr.Samples()[i] {
			t.Errorf("sample %d differs", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"samples":[]}`,
		`{"samples":[{"duration_s":0,"mbps":1}]}`,
		`{"samples":[{"duration_s":1,"mbps":-2}]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", c)
		}
	}
}

func TestConcat(t *testing.T) {
	a := Constant(units.Mbps(5), units.Seconds(10))
	b := Constant(units.Mbps(10), units.Seconds(10))
	c := a.Concat(b, Constant(units.Mbps(1), units.Seconds(5)))
	if math.Abs(float64(c.Duration())-25) > 1e-9 {
		t.Fatalf("duration = %v", c.Duration())
	}
	if c.BandwidthAt(units.Seconds(5)) != 5 || c.BandwidthAt(units.Seconds(15)) != 10 || c.BandwidthAt(units.Seconds(22)) != 1 {
		t.Error("concat order wrong")
	}
	// Originals untouched.
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("Concat mutated inputs")
	}
}

func TestRepeat(t *testing.T) {
	tr := figure4Trace().Repeat(3)
	if math.Abs(float64(tr.Duration())-12) > 1e-9 {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if tr.BandwidthAt(units.Seconds(4.5)) != 4 { // second copy starts at t=4
		t.Error("repeat content wrong")
	}
	if empty := figure4Trace().Repeat(0); empty.Len() != 0 {
		t.Errorf("Repeat(0) has %d samples", empty.Len())
	}
}
