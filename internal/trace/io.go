package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/units"
)

// jsonTrace is the JSON interchange shape: {"samples":[{"duration_s":..,
// "mbps":..}, ...]}.
type jsonTrace struct {
	Samples []jsonSample `json:"samples"`
}

type jsonSample struct {
	DurationS float64 `json:"duration_s"`
	Mbps      float64 `json:"mbps"`
}

// WriteJSON writes the trace as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := jsonTrace{Samples: make([]jsonSample, len(t.samples))}
	for i, s := range t.samples {
		out.Samples[i] = jsonSample{DurationS: float64(s.Duration), Mbps: float64(s.Mbps)}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON parses a trace from the WriteJSON format, validating samples.
func ReadJSON(r io.Reader) (*Trace, error) {
	var in jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(in.Samples) == 0 {
		return nil, fmt.Errorf("trace: JSON trace has no samples")
	}
	t := &Trace{}
	for i, s := range in.Samples {
		if s.DurationS <= 0 || s.Mbps < 0 {
			return nil, fmt.Errorf("trace: JSON sample %d invalid (%g s, %g Mbps)", i, s.DurationS, s.Mbps)
		}
		t.Append(Sample{Duration: units.Seconds(s.DurationS), Mbps: units.Mbps(s.Mbps)})
	}
	return t, nil
}

// Concat returns a new trace playing the receiver followed by others.
func (t *Trace) Concat(others ...*Trace) *Trace {
	out := &Trace{}
	for _, s := range t.samples {
		out.Append(s)
	}
	for _, o := range others {
		for _, s := range o.samples {
			out.Append(s)
		}
	}
	return out
}

// Repeat returns the trace repeated n times. n < 1 yields an empty trace.
func (t *Trace) Repeat(n int) *Trace {
	out := &Trace{}
	for i := 0; i < n; i++ {
		for _, s := range t.samples {
			out.Append(s)
		}
	}
	return out
}
