package trace

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func figure4Trace() *Trace {
	// The throughput function of the paper's Figure 4:
	// 4 Mb/s for 1 s, 1 Mb/s for 1 s, then 2 Mb/s for 2 s.
	return New([]Sample{{units.Seconds(1), units.Mbps(4)}, {units.Seconds(1), units.Mbps(1)}, {units.Seconds(2), units.Mbps(2)}})
}

func TestFigure4TimeBasedThroughput(t *testing.T) {
	tr := figure4Trace()
	// Time-based formulation with Δt = 1 s: ω1=4, ω2=1, ω3=ω4=2.
	want := []float64{4, 1, 2, 2}
	for i, w := range want {
		got := tr.MeanOver(units.Seconds(i), units.Seconds(1))
		if math.Abs(float64(got)-w) > 1e-12 {
			t.Errorf("ω_%d = %v, want %v", i+1, got, w)
		}
	}
}

func TestFigure4SegmentBasedBias(t *testing.T) {
	tr := figure4Trace()
	// Segment-based accounting from §3.1: with L = 1 s, r1 = 2 Mb/s the first
	// segment (2 Mb) downloads in 0.5 s at 4 Mb/s, so ω1 = 4 Mb/s; with
	// r2 = 2.5 Mb/s the second segment (2.5 Mb) takes 1 s (0.5 s at 4 Mb/s
	// gives 2 Mb, then 0.5 s at 1 Mb/s gives 0.5 Mb), so ω2 = 2.5 Mb/s.
	dt1, err := tr.DownloadTime(units.Seconds(0), units.Megabits(2.0))
	if err != nil || math.Abs(float64(dt1)-0.5) > 1e-12 {
		t.Fatalf("segment 1 download time = %v, %v; want 0.5", dt1, err)
	}
	dt2, err := tr.DownloadTime(units.Seconds(0.5), units.Megabits(2.5))
	if err != nil || math.Abs(float64(dt2)-1.0) > 1e-12 {
		t.Fatalf("segment 2 download time = %v, %v; want 1.0", dt2, err)
	}
	if w1 := 2.0 / float64(dt1); math.Abs(w1-4) > 1e-12 {
		t.Errorf("segment-based ω1 = %v, want 4", w1)
	}
	if w2 := 2.5 / float64(dt2); math.Abs(w2-2.5) > 1e-12 {
		t.Errorf("segment-based ω2 = %v, want 2.5", w2)
	}
}

func TestBandwidthAt(t *testing.T) {
	tr := figure4Trace()
	// {4, 4} exercises wrap-around; {-0.5, 2} wraps negatively from the end.
	for _, c := range []struct{ at, want float64 }{
		{0, 4}, {0.99, 4}, {1, 1}, {1.5, 1}, {2, 2}, {3.9, 2}, {4, 4}, {-0.5, 2},
	} {
		if got := tr.BandwidthAt(units.Seconds(c.at)); float64(got) != c.want {
			t.Errorf("BandwidthAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	var empty Trace
	if empty.BandwidthAt(units.Seconds(1)) != 0 {
		t.Error("empty trace should report 0 bandwidth")
	}
}

func TestDownloadTimeWrap(t *testing.T) {
	tr := New([]Sample{{units.Seconds(1), units.Mbps(8)}}) // 8 Mb/s forever
	dt, err := tr.DownloadTime(units.Seconds(0.9), units.Megabits(16))
	if err != nil || math.Abs(float64(dt)-2.0) > 1e-9 {
		t.Errorf("DownloadTime = %v, %v; want 2", dt, err)
	}
	if dt, err := tr.DownloadTime(units.Seconds(5), units.Megabits(0)); err != nil || dt != 0 {
		t.Errorf("zero-size transfer = %v, %v", dt, err)
	}
}

func TestDownloadTimeStalled(t *testing.T) {
	tr := New([]Sample{{units.Seconds(5), units.Mbps(0)}})
	if _, err := tr.DownloadTime(units.Seconds(0), units.Megabits(1)); err != ErrStalled {
		t.Errorf("want ErrStalled, got %v", err)
	}
	var empty Trace
	if _, err := empty.DownloadTime(units.Seconds(0), units.Megabits(1)); err != ErrStalled {
		t.Errorf("empty trace: want ErrStalled, got %v", err)
	}
	// Zero spans followed by capacity must still complete.
	mix := New([]Sample{{units.Seconds(2), units.Mbps(0)}, {units.Seconds(1), units.Mbps(10)}})
	dt, err := mix.DownloadTime(units.Seconds(0), units.Megabits(5))
	if err != nil || math.Abs(float64(dt)-2.5) > 1e-9 {
		t.Errorf("mixed trace DownloadTime = %v, %v; want 2.5", dt, err)
	}
}

func TestTransferableMegabits(t *testing.T) {
	tr := figure4Trace()
	if got := tr.TransferableMegabits(units.Seconds(0), units.Seconds(4)); math.Abs(float64(got)-9) > 1e-12 {
		t.Errorf("full trace capacity = %v, want 9", got)
	}
	if got := tr.TransferableMegabits(units.Seconds(0.5), units.Seconds(1)); math.Abs(float64(got)-2.5) > 1e-12 {
		t.Errorf("capacity over [0.5,1.5) = %v, want 2.5", got)
	}
	// Wrap-around window.
	if got := tr.TransferableMegabits(units.Seconds(3.5), units.Seconds(1)); math.Abs(float64(got)-(1+2)) > 1e-12 {
		t.Errorf("wrapping capacity = %v, want 3", got)
	}
}

func TestMeanAndRSD(t *testing.T) {
	tr := figure4Trace()
	wantMean := 9.0 / 4.0
	if got := tr.MeanMbps(); math.Abs(float64(got)-wantMean) > 1e-12 {
		t.Errorf("MeanMbps = %v, want %v", got, wantMean)
	}
	if c := Constant(units.Mbps(5), units.Seconds(10)); c.RSD() != 0 {
		t.Errorf("constant trace RSD = %v", c.RSD())
	}
	if tr.RSD() <= 0 {
		t.Errorf("varying trace RSD = %v", tr.RSD())
	}
	if tr.MinMbps() != 1 {
		t.Errorf("MinMbps = %v", tr.MinMbps())
	}
}

func TestSliceAndSplit(t *testing.T) {
	tr := figure4Trace()
	s := tr.Slice(units.Seconds(0.5), units.Seconds(2))
	if math.Abs(float64(s.Duration())-2) > 1e-9 {
		t.Fatalf("slice duration = %v", s.Duration())
	}
	if got := s.MeanOver(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-tr.MeanOver(units.Seconds(0.5), units.Seconds(2)))) > 1e-9 {
		t.Errorf("slice mean = %v, want %v", got, tr.MeanOver(units.Seconds(0.5), units.Seconds(2)))
	}
	sessions := tr.SplitSessions(units.Seconds(2))
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	for i, ss := range sessions {
		if math.Abs(float64(ss.Duration())-2) > 1e-9 {
			t.Errorf("session %d duration = %v", i, ss.Duration())
		}
		if err := ss.Validate(); err != nil {
			t.Errorf("session %d invalid: %v", i, err)
		}
	}
	if got := tr.SplitSessions(units.Seconds(10)); got != nil {
		t.Errorf("oversized split should be nil, got %d sessions", len(got))
	}
}

func TestScale(t *testing.T) {
	tr := figure4Trace().Scale(2)
	if got := tr.MeanMbps(); math.Abs(float64(got)-4.5) > 1e-12 {
		t.Errorf("scaled mean = %v", got)
	}
	if tr.Len() != 3 {
		t.Errorf("scaled length = %d", tr.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := figure4Trace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || math.Abs(float64(back.Duration()-tr.Duration())) > 1e-9 {
		t.Fatalf("round trip mismatch: %d samples, %v s", back.Len(), back.Duration())
	}
	for i, s := range back.Samples() {
		if s != tr.Samples()[i] {
			t.Errorf("sample %d = %+v, want %+v", i, s, tr.Samples()[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",
		"abc,2\n",
		"1,abc\n",
		"-1,2\n",
		"1,-2\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
	// Header, comments and blank lines are fine.
	tr, err := ReadCSV(strings.NewReader("duration_s,mbps\n# comment\n\n1,5\n"))
	if err != nil || tr.Len() != 1 {
		t.Errorf("lenient parse failed: %v, %d", err, tr.Len())
	}
}

func TestValidate(t *testing.T) {
	tr := figure4Trace()
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := &Trace{samples: []Sample{{Duration: units.Seconds(1), Mbps: units.Mbps(2)}}, total: units.Seconds(99)}
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent total not caught")
	}
	bad2 := &Trace{samples: []Sample{{Duration: units.Seconds(-1), Mbps: units.Mbps(2)}}, total: units.Seconds(-1)}
	if err := bad2.Validate(); err == nil {
		t.Error("negative duration not caught")
	}
}

func TestAppendPanics(t *testing.T) {
	for _, s := range []Sample{{units.Seconds(0), units.Mbps(1)}, {units.Seconds(-1), units.Mbps(1)}, {units.Seconds(1), units.Mbps(-1)}, {units.Seconds(1), units.Mbps(math.NaN())}, {units.Seconds(1), units.Mbps(math.Inf(1))}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%+v) should panic", s)
				}
			}()
			var tr Trace
			tr.Append(s)
		}()
	}
}

// Property: download time is consistent with TransferableMegabits — the
// megabits transferable in the computed time equal the requested size.
func TestDownloadTimeConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		tr := &Trace{}
		n := 1 + rng.IntN(20)
		for i := 0; i < n; i++ {
			tr.Append(Sample{
				Duration: units.Seconds(0.1 + rng.Float64()*3),
				Mbps:     units.Mbps(0.5 + rng.Float64()*50),
			})
		}
		start := units.Seconds(rng.Float64() * 100)
		size := units.Megabits(0.1 + rng.Float64()*200)
		dt, err := tr.DownloadTime(start, size)
		if err != nil {
			return false
		}
		got := tr.TransferableMegabits(start, dt)
		return math.Abs(float64(got-size)) < 1e-6*math.Max(1, float64(size))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MeanOver of a full wrap equals MeanMbps.
func TestMeanOverFullWrap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 123))
		tr := &Trace{}
		n := 1 + rng.IntN(10)
		for i := 0; i < n; i++ {
			tr.Append(Sample{Duration: units.Seconds(0.2 + rng.Float64()), Mbps: units.Mbps(rng.Float64() * 20)})
		}
		start := units.Seconds(rng.Float64() * 7)
		return math.Abs(float64(tr.MeanOver(start, tr.Duration())-tr.MeanMbps())) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthsAndSummary(t *testing.T) {
	tr := figure4Trace()
	bw := tr.Bandwidths()
	if len(bw) != 3 || bw[0] != 4 || bw[1] != 1 || bw[2] != 2 {
		t.Errorf("Bandwidths = %v", bw)
	}
	if s := tr.Summary(); s.N != 3 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
}
