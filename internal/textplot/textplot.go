// Package textplot renders small ASCII charts for the experiment reports:
// multi-series line charts (Figures 6, 8, 11), horizontal bar charts
// (Figures 10, 12, 13) and scatter plots (Figure 1). The goal is a readable
// terminal representation of the paper's figures, not pixel graphics.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line or point set.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers assigns one rune per series, cycling when exhausted.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders a multi-series chart on a w x h character canvas. Series
// share the axes; x and y ranges span the pooled data. Returns "" for empty
// input.
func Lines(title string, series []Series, w, h int) string {
	if w < 16 {
		w = 16
	}
	if h < 5 {
		h = 5
	}
	var xs, ys []float64
	for _, s := range series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return ""
	}
	xlo, xhi := minMax(xs)
	ylo, yhi := minMax(ys)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}

	canvas := make([][]rune, h)
	for i := range canvas {
		canvas[i] = []rune(strings.Repeat(" ", w))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int(math.Round((s.X[i] - xlo) / (xhi - xlo) * float64(w-1)))
			cy := int(math.Round((s.Y[i] - ylo) / (yhi - ylo) * float64(h-1)))
			row := h - 1 - cy
			if row >= 0 && row < h && cx >= 0 && cx < w {
				canvas[row][cx] = m
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, row := range canvas {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.3g ", yhi)
		} else if i == h-1 {
			label = fmt.Sprintf("%7.3g ", ylo)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, "         %-*.3g%*.3g\n", w/2, xlo, w-w/2, xhi)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "         %s\n", strings.Join(legend, "   "))
	return b.String()
}

// Bars renders a horizontal bar chart of labeled values; negative values are
// drawn leftward from the axis. Returns "" for empty input.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width < 10 {
		width = 10
	}
	maxAbs := 0.0
	maxLabel := 0
	for i, v := range values {
		maxAbs = math.Max(maxAbs, math.Abs(v))
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		bar := strings.Repeat("=", n)
		if v < 0 {
			fmt.Fprintf(&b, "  %-*s %*s| %10.4f\n", maxLabel, labels[i], width, bar, v)
		} else {
			fmt.Fprintf(&b, "  %-*s %*s|%s %.4f\n", maxLabel, labels[i], width, "", bar, v)
		}
	}
	return b.String()
}

// Scatter renders one point set with a least-squares fit line overlaid when
// fit is true.
func Scatter(title string, s Series, w, h int, fit bool) string {
	series := []Series{s}
	if fit && len(s.X) >= 2 {
		slope, intercept := leastSquares(s.X, s.Y)
		xlo, xhi := minMax(s.X)
		const steps = 32
		line := Series{Name: "fit"}
		for i := 0; i <= steps; i++ {
			x := xlo + (xhi-xlo)*float64(i)/steps
			line.X = append(line.X, x)
			line.Y = append(line.Y, intercept+slope*x)
		}
		series = append(series, line)
	}
	return Lines(title, series, w, h)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func leastSquares(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxy, sxx float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	return slope, (sy - slope*sx) / n
}
