package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}
	out := Lines("two lines", s, 40, 10)
	if !strings.Contains(out, "two lines") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("missing legend:\n%s", out)
	}
	// Corner points must be plotted: top row carries a marker, bottom too.
	rows := strings.Split(out, "\n")
	if !strings.ContainsAny(rows[1], "*o") {
		t.Errorf("top row empty:\n%s", out)
	}
	// Axis labels carry the ranges.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Errorf("missing range labels:\n%s", out)
	}
}

func TestLinesEmptyAndDegenerate(t *testing.T) {
	if out := Lines("x", nil, 40, 10); out != "" {
		t.Errorf("empty input produced %q", out)
	}
	// A single point (zero ranges) must not panic or divide by zero.
	out := Lines("pt", []Series{{Name: "p", X: []float64{1}, Y: []float64{2}}}, 20, 6)
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("degenerate plot: %q", out)
	}
	// Tiny dimensions are clamped.
	if out := Lines("", []Series{{Name: "p", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1); out == "" {
		t.Error("clamped plot empty")
	}
}

func TestBars(t *testing.T) {
	out := Bars("deltas", []string{"alpha", "b"}, []float64{0.5, -1.0}, 20)
	if !strings.Contains(out, "deltas") || !strings.Contains(out, "alpha") {
		t.Errorf("missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The larger magnitude gets the full width.
	if !strings.Contains(lines[2], strings.Repeat("=", 20)) {
		t.Errorf("full-width bar missing:\n%s", out)
	}
	// Positive bars sit right of the axis, negative left.
	if !strings.Contains(lines[1], "| =") && !strings.Contains(lines[1], "|=") {
		t.Errorf("positive bar orientation wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "=|") {
		t.Errorf("negative bar orientation wrong: %q", lines[2])
	}
}

func TestBarsDegenerate(t *testing.T) {
	if out := Bars("t", nil, nil, 10); out != "" {
		t.Errorf("empty bars produced %q", out)
	}
	if out := Bars("t", []string{"a"}, []float64{1, 2}, 10); out != "" {
		t.Error("mismatched lengths accepted")
	}
	// All-zero values must not divide by zero.
	out := Bars("t", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked: %s", out)
	}
}

func TestScatterWithFit(t *testing.T) {
	// Noisy-but-linear data: the fit line legend must appear.
	s := Series{Name: "data"}
	for i := 0; i < 20; i++ {
		x := float64(i)
		s.X = append(s.X, x)
		s.Y = append(s.Y, 2*x+1+math.Sin(x))
	}
	out := Scatter("scatter", s, 40, 12, true)
	if !strings.Contains(out, "o fit") {
		t.Errorf("fit legend missing:\n%s", out)
	}
	if Scatter("s", Series{Name: "one", X: []float64{1}, Y: []float64{1}}, 20, 6, true) == "" {
		t.Error("single-point scatter empty")
	}
}

func TestLeastSquares(t *testing.T) {
	slope, intercept := leastSquares([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = %v, %v", slope, intercept)
	}
	// Degenerate vertical data.
	slope, intercept = leastSquares([]float64{2, 2}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Errorf("degenerate fit = %v, %v", slope, intercept)
	}
}
