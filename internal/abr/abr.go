// Package abr defines the controller abstraction shared by the simulator,
// the TCP prototype player and the production A/B harness: every ABR
// algorithm in this repository (SODA and all baselines) implements
// abr.Controller and receives an abr.Context per decision.
//
// The context deliberately exposes exactly the information a real player has
// at decision time: the buffer level, the previously selected rung, the
// ladder, and access to a throughput predictor. Controllers never see the
// future trace.
package abr

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/units"
	"repro/internal/video"
)

// NoRung marks "no previous bitrate" (before the first segment) and, in a
// Decision, "do not download now".
const NoRung = -1

// Decision is a controller's answer for the next download.
type Decision struct {
	// Rung is the ladder index to download next, or NoRung to wait.
	Rung int
	// WaitSeconds suggests how long to idle when Rung is NoRung. The player
	// may clamp it. Ignored when Rung >= 0.
	WaitSeconds units.Seconds
}

// Wait returns a no-download decision with the suggested idle time.
func Wait(d units.Seconds) Decision { return Decision{Rung: NoRung, WaitSeconds: d} }

// Context carries the player state visible to a controller at decision time.
// Every dimensioned quantity is expressed in the internal/units types, so the
// whole decision path — harness, context, controller, predictor — is
// statically unit-checked end to end.
type Context struct {
	// Now is the current stream clock.
	Now units.Seconds
	// Buffer is the current buffer level in seconds of video.
	Buffer units.Seconds
	// BufferCap is the maximum buffer the player may hold (e.g. 20 s for the
	// paper's live configuration).
	BufferCap units.Seconds
	// PrevRung is the rung of the previously downloaded segment, or NoRung
	// before the first download.
	PrevRung int
	// Ladder is the available bitrate ladder.
	Ladder video.Ladder
	// Predict returns the predicted mean throughput over the next horizon.
	// It is never nil during simulation.
	Predict func(horizon units.Seconds) units.Mbps
	// PredictQuantile returns a throughput quantile forecast, or nil when the
	// configured predictor has no distributional support.
	PredictQuantile func(q float64, horizon units.Seconds) units.Mbps
	// LastThroughput is the measured mean throughput of the previous
	// segment download, or 0 before the first download. RobustMPC uses it to
	// track its own prediction errors.
	LastThroughput units.Mbps
	// SegmentIndex is the index of the segment about to be selected.
	SegmentIndex int
	// TotalSegments is the session length in segments (0 when unknown/live).
	TotalSegments int
}

// PredictSafe returns the point prediction, treating a nil Predict or
// non-positive forecast as "unknown" and falling back to the lowest rung's
// bitrate so controllers degrade conservatively during startup.
func (c *Context) PredictSafe(horizon units.Seconds) units.Mbps {
	if c.Predict == nil {
		return c.Ladder.Min()
	}
	p := c.Predict(horizon)
	if p <= 0 {
		return c.Ladder.Min()
	}
	return p
}

// Validate reports obviously inconsistent contexts; used by tests and the
// harnesses' debug paths.
func (c *Context) Validate() error {
	if c.Buffer < 0 {
		return fmt.Errorf("abr: negative buffer %v", c.Buffer)
	}
	if c.BufferCap <= 0 {
		return fmt.Errorf("abr: non-positive buffer cap %v", c.BufferCap)
	}
	if c.Ladder.Len() == 0 {
		return fmt.Errorf("abr: empty ladder")
	}
	if c.PrevRung != NoRung && (c.PrevRung < 0 || c.PrevRung >= c.Ladder.Len()) {
		return fmt.Errorf("abr: previous rung %d out of range", c.PrevRung)
	}
	return nil
}

// Controller selects a bitrate for each segment.
type Controller interface {
	// Name identifies the controller in reports ("soda", "bola", ...).
	Name() string
	// Decide picks the rung for the next segment (or Wait).
	Decide(ctx *Context) Decision
	// Reset clears per-session state; called between sessions.
	Reset()
}

// Factory constructs a fresh controller for a session. The ladder is fixed
// per session; controllers must not retain the config slice.
type Factory func(ladder video.Ladder) Controller

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a controller factory under a unique name. It panics on
// duplicates — registration happens in package init, so a duplicate is a
// programming error.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("abr: duplicate controller registration %q", name))
	}
	registry[name] = f
}

// New constructs a registered controller by name.
func New(name string, ladder video.Ladder) (Controller, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("abr: unknown controller %q (registered: %v)", name, Names())
	}
	return f(ladder), nil
}

// Names returns the sorted registered controller names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
