package abr

import (
	"strings"
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

type fakeController struct{ name string }

func (f *fakeController) Name() string             { return f.name }
func (f *fakeController) Decide(*Context) Decision { return Decision{Rung: 0} }
func (f *fakeController) Reset()                   {}

func TestRegistry(t *testing.T) {
	Register("test-fake", func(video.Ladder) Controller { return &fakeController{name: "test-fake"} })
	c, err := New("test-fake", video.Mobile())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "test-fake" {
		t.Errorf("Name = %q", c.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() missing registration: %v", Names())
	}
	if _, err := New("no-such-controller", video.Mobile()); err == nil {
		t.Error("unknown controller should error")
	} else if !strings.Contains(err.Error(), "no-such-controller") {
		t.Errorf("error should name the controller: %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("test-dup", func(video.Ladder) Controller { return &fakeController{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	Register("test-dup", func(video.Ladder) Controller { return &fakeController{} })
}

func TestWaitDecision(t *testing.T) {
	d := Wait(units.Seconds(1.5))
	if d.Rung != NoRung || d.WaitSeconds != 1.5 {
		t.Errorf("Wait = %+v", d)
	}
}

func TestContextValidate(t *testing.T) {
	good := &Context{Buffer: units.Seconds(5), BufferCap: units.Seconds(20), PrevRung: NoRung, Ladder: video.Mobile()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid context rejected: %v", err)
	}
	cases := []*Context{
		{Buffer: -1, BufferCap: 20, PrevRung: NoRung, Ladder: video.Mobile()},
		{Buffer: 1, BufferCap: 0, PrevRung: NoRung, Ladder: video.Mobile()},
		{Buffer: 1, BufferCap: 20, PrevRung: NoRung},
		{Buffer: 1, BufferCap: 20, PrevRung: 99, Ladder: video.Mobile()},
		{Buffer: 1, BufferCap: 20, PrevRung: -2, Ladder: video.Mobile()},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid context accepted", i)
		}
	}
}

func TestPredictSafe(t *testing.T) {
	ctx := &Context{Ladder: video.Mobile()}
	if got := ctx.PredictSafe(units.Seconds(2)); got != ctx.Ladder.Min() {
		t.Errorf("nil predictor fallback = %v", got)
	}
	ctx.Predict = func(units.Seconds) units.Mbps { return 0 }
	if got := ctx.PredictSafe(units.Seconds(2)); got != ctx.Ladder.Min() {
		t.Errorf("zero prediction fallback = %v", got)
	}
	ctx.Predict = func(units.Seconds) units.Mbps { return units.Mbps(9) }
	if got := ctx.PredictSafe(units.Seconds(2)); got != 9 {
		t.Errorf("PredictSafe = %v", got)
	}
}
