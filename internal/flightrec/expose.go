package flightrec

// HTTP surface and trace export: /debug/spans, /debug/incidents,
// /debug/sessions, and the Chrome trace-event (Perfetto-loadable) writer.
// All of it is cold-path snapshot-and-encode; nothing here touches the
// seqlock rings beyond Snapshot.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// SpansHandler serves the recorder's span rings as JSONL, one span per
// line, ordered by stage then oldest first. Filters: ?limit= (newest N
// after filtering), ?session=, ?stage=<name>.
func SpansHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit, session, ok := parseLimitSession(w, r)
		if !ok {
			return
		}
		stage := r.URL.Query().Get("stage")
		if stage != "" && !validStage(stage) {
			http.Error(w, "unknown stage (want one of ratelimit, inflight, session, arena, decide, respond)", http.StatusBadRequest)
			return
		}
		spans := rec.Snapshot()
		kept := spans[:0]
		for _, sp := range spans {
			if session != telemetry.AllSessions && sp.Session != session {
				continue
			}
			if stage != "" && sp.StageName != stage {
				continue
			}
			kept = append(kept, sp)
		}
		if limit > 0 && len(kept) > limit {
			kept = kept[len(kept)-limit:]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := range kept {
			if err := enc.Encode(&kept[i]); err != nil {
				return // client hung up
			}
		}
	})
}

// IncidentsHandler serves the watchdog's incident log as JSONL, oldest
// first. Filters: ?limit= (newest N), ?session=.
func IncidentsHandler(log *IncidentLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit, session, ok := parseLimitSession(w, r)
		if !ok {
			return
		}
		var incidents []Incident
		if log != nil {
			incidents = log.Snapshot()
		}
		kept := incidents[:0]
		for _, in := range incidents {
			if session != telemetry.AllSessions && in.Session != session {
				continue
			}
			kept = append(kept, in)
		}
		if limit > 0 && len(kept) > limit {
			kept = kept[len(kept)-limit:]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := range kept {
			if err := enc.Encode(&kept[i]); err != nil {
				return
			}
		}
	})
}

// SessionTimeline is the /debug/sessions payload: one session's decision
// trajectory reconstructed from the telemetry ring, its pipeline spans, and
// its incidents.
type SessionTimeline struct {
	Session   int32                     `json:"session"`
	Decisions []telemetry.DecisionEvent `json:"decisions"`
	Spans     []Span                    `json:"spans,omitempty"`
	Incidents []Incident                `json:"incidents,omitempty"`
}

// BuildTimeline reconstructs one session's timeline. ring is required;
// rec and log may be nil.
func BuildTimeline(ring *telemetry.Ring, rec *Recorder, log *IncidentLog, session int32) SessionTimeline {
	tl := SessionTimeline{Session: session, Decisions: []telemetry.DecisionEvent{}}
	if ring != nil {
		for _, ev := range ring.Snapshot() {
			if ev.Session == session {
				tl.Decisions = append(tl.Decisions, ev)
			}
		}
	}
	if rec != nil {
		tl.Spans = rec.SessionSpans(session)
	}
	if log != nil {
		for _, in := range log.Snapshot() {
			if in.Session == session {
				tl.Incidents = append(tl.Incidents, in)
			}
		}
	}
	return tl
}

// SessionTimelineHandler serves /debug/sessions?id=N: the session's
// reconstructed timeline as JSON, or as Chrome trace-event JSON with
// ?format=trace. rec and log may be nil (decisions-only timelines).
func SessionTimelineHandler(ring *telemetry.Ring, rec *Recorder, log *IncidentLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		idStr := r.URL.Query().Get("id")
		if idStr == "" {
			http.Error(w, "missing required ?id=<session>", http.StatusBadRequest)
			return
		}
		id, err := strconv.ParseInt(idStr, 10, 32)
		if err != nil || id < 0 {
			http.Error(w, "id must be a non-negative int32", http.StatusBadRequest)
			return
		}
		tl := BuildTimeline(ring, rec, log, int32(id))
		switch r.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tl)
		case "trace":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, tl.Decisions, tl.Spans)
		default:
			http.Error(w, "format must be json or trace", http.StatusBadRequest)
		}
	})
}

func parseLimitSession(w http.ResponseWriter, r *http.Request) (limit int, session int32, ok bool) {
	session = telemetry.AllSessions
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return 0, 0, false
		}
		limit = n
	}
	if s := r.URL.Query().Get("session"); s != "" {
		n, err := strconv.ParseInt(s, 10, 32)
		if err != nil || n < 0 {
			http.Error(w, "session must be a non-negative int32", http.StatusBadRequest)
			return 0, 0, false
		}
		session = int32(n)
	}
	return limit, session, true
}

func validStage(name string) bool {
	for _, s := range stageNames {
		if s == name {
			return true
		}
	}
	return false
}

// traceEvent is one Chrome trace-event record; see the Trace Event Format
// spec (Perfetto and chrome://tracing both load it).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the trace format.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders decision events and pipeline spans as Chrome
// trace-event JSON: each session is a thread (tid), decision events become
// per-session buffer/rung counter tracks plus instants (rung picks) and
// duration slices (waits), and spans become duration slices on their
// session's track. Decision timestamps come from DecisionEvent.AtSeconds
// (the harness stream clock); span timestamps from the recorder epoch.
func WriteChromeTrace(w io.Writer, events []telemetry.DecisionEvent, spans []Span) error {
	out := chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	sessions := map[int64]bool{}
	for _, ev := range events {
		tid := int64(ev.Session)
		sessions[tid] = true
		ts := float64(ev.AtSeconds) * 1e6
		out.TraceEvents = append(out.TraceEvents,
			traceEvent{
				Name: fmt.Sprintf("buffer/session %d", ev.Session), Ph: "C",
				Ts: ts, Pid: 1, Tid: tid,
				Args: map[string]any{"buffer_s": float64(ev.Buffer)},
			},
			traceEvent{
				Name: fmt.Sprintf("rung/session %d", ev.Session), Ph: "C",
				Ts: ts, Pid: 1, Tid: tid,
				Args: map[string]any{"rung": int(ev.Rung)},
			})
		if ev.Rung < 0 {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "wait", Ph: "X", Ts: ts,
				Dur: float64(ev.WaitSeconds) * 1e6, Pid: 1, Tid: tid,
				Args: map[string]any{"buffer_s": float64(ev.Buffer)},
			})
		} else {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: fmt.Sprintf("rung %d", ev.Rung), Ph: "i", Ts: ts,
				Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{
					"throughput_mbps": float64(ev.Throughput),
					"bitrate_mbps":    float64(ev.Bitrate),
				},
			})
		}
	}
	for _, sp := range spans {
		tid := int64(sp.Session)
		sessions[tid] = true
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: sp.StageName, Ph: "X",
			Ts:  float64(sp.Start) * 1e-3,
			Dur: float64(sp.Dur) * 1e-3,
			Pid: 1, Tid: tid,
			Args: map[string]any{"ok": sp.OK},
		})
	}
	// Thread-name metadata labels each session track.
	tids := make([]int64, 0, len(sessions))
	for tid := range sessions {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("session %d", tid)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTraceFile renders WriteChromeTrace to a file — the backing of
// the soda-server and soda-sim -trace-export flags. The file loads directly
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTraceFile(path string, events []telemetry.DecisionEvent, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, events, spans); err != nil {
		_ = f.Close() // best effort; the write error is the one to report
		return err
	}
	return f.Close()
}
