package flightrec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

func TestStageString(t *testing.T) {
	want := []string{"ratelimit", "inflight", "session", "arena", "decide", "respond"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Errorf("out-of-range stage = %q", got)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := NewRecorder(reg, 16)
	rec.Record(StageDecide, 7, 1000, 250, true)
	rec.Record(StageDecide, 8, 2000, 500, true)
	rec.Record(StageRateLimit, 7, 900, 50, false)

	spans := rec.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(spans))
	}
	byStage := map[string]int{}
	for _, sp := range spans {
		byStage[sp.StageName]++
	}
	if byStage["decide"] != 2 || byStage["ratelimit"] != 1 {
		t.Fatalf("stage counts = %v", byStage)
	}
	only := rec.SessionSpans(7)
	if len(only) != 2 {
		t.Fatalf("session 7 spans = %d, want 2", len(only))
	}
	for _, sp := range only {
		if sp.Session != 7 {
			t.Fatalf("session filter leaked %+v", sp)
		}
	}
	// The rejected ratelimit span kept its OK=false bit and payload.
	var rl *Span
	for i := range spans {
		if spans[i].StageName == "ratelimit" {
			rl = &spans[i]
		}
	}
	if rl == nil || rl.OK || rl.Start != 900 || rl.Dur != 50 {
		t.Fatalf("ratelimit span = %+v", rl)
	}
	// The per-stage histograms saw the observations.
	snaps := reg.Snapshot()
	var histCount uint64
	for _, s := range snaps {
		if s.Name == "soda_server_stage_latency_seconds" {
			histCount += s.Count
		}
	}
	if histCount != 3 {
		t.Fatalf("stage histograms observed %d, want 3", histCount)
	}
}

func TestRecorderWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(nil, 8)
	for i := 0; i < 30; i++ {
		rec.Record(StageDecide, int32(i), int64(i*100), 10, true)
	}
	spans := rec.SessionSpans(29)
	if len(spans) != 1 {
		t.Fatalf("newest span missing after wrap: %d", len(spans))
	}
	if got := rec.Snapshot(); len(got) != 8 {
		t.Fatalf("wrapped ring holds %d, want 8", len(got))
	}
	if rec.SessionSpans(0) != nil && len(rec.SessionSpans(0)) != 0 {
		t.Fatal("oldest span survived the wrap")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(StageDecide, 1, 0, 1, true)
	if rec.Now() != 0 || rec.Snapshot() != nil || rec.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

// TestRecorderConcurrent hammers the seqlock rings with concurrent writers
// while a reader snapshots continuously: under -race this proves the rings
// are race-detector-clean, and the payload invariant (Dur == Session+1 for
// every span this test writes) proves snapshots never return torn spans.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(nil, 64)
	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
				for _, sp := range rec.Snapshot() {
					if int(sp.Stage) >= NumStages || sp.Dur != int64(sp.Session)+1 {
						readerDone <- fmt.Errorf("torn span %+v", sp)
						return
					}
				}
			}
		}
	}()
	var writers sync.WaitGroup
	const nWriters, each = 8, 2000
	for w := 0; w < nWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < each; i++ {
				s := int32((w*each + i) % 100)
				rec.Record(Stage(i%NumStages), s, int64(i), int64(s)+1, true)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	recorded := uint64(0)
	for s := 0; s < NumStages; s++ {
		recorded += rec.rings[s].cursor.Load()
	}
	if recorded != nWriters*each {
		t.Fatalf("claimed %d slots, want %d", recorded, nWriters*each)
	}
}

func TestWatchdogOscillation(t *testing.T) {
	w := NewWatchdog(nil, WatchdogConfig{OscillationWindow: 8, OscillationSwitches: 4})
	var watch SessionWatch
	rungs := []int16{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	prev := int16(0)
	for i, r := range rungs {
		w.Observe(&watch, 1, units.Seconds(i), units.Seconds(10), r, prev)
		prev = r
	}
	if got := w.Count(KindOscillation); got != 1 {
		t.Fatalf("oscillation incidents = %d, want 1 (hysteresis: one per excursion)", got)
	}
	// Settle: long stable run re-arms the detector…
	for i := 0; i < 16; i++ {
		w.Observe(&watch, 1, units.Seconds(20+i), units.Seconds(10), 1, 1)
	}
	// …then a second oscillation burst fires again.
	prev = 1
	for i := 0; i < 12; i++ {
		r := int16(i % 2)
		w.Observe(&watch, 1, units.Seconds(40+i), units.Seconds(10), r, prev)
		prev = r
	}
	if got := w.Count(KindOscillation); got != 2 {
		t.Fatalf("oscillation incidents after re-arm = %d, want 2", got)
	}
}

func TestWatchdogStallAndUnderrun(t *testing.T) {
	w := NewWatchdog(nil, WatchdogConfig{UnderrunHorizon: units.Seconds(4)})
	var watch SessionWatch
	// Startup at buffer 0 must NOT count as a stall or underrun.
	w.Observe(&watch, 2, units.Seconds(0), units.Seconds(0), 0, -1)
	w.Observe(&watch, 2, units.Seconds(1), units.Seconds(0), 0, 0)
	if w.Total() != 0 {
		t.Fatalf("startup flagged %d incidents", w.Total())
	}
	// Fill, then dip below the horizon → one underrun-risk incident.
	w.Observe(&watch, 2, units.Seconds(2), units.Seconds(10), 1, 0)
	w.Observe(&watch, 2, units.Seconds(3), units.Seconds(3), 1, 1)
	w.Observe(&watch, 2, units.Seconds(4), units.Seconds(2), 1, 1) // still in excursion, no second incident
	if got := w.Count(KindUnderrunRisk); got != 1 {
		t.Fatalf("underrun incidents = %d, want 1", got)
	}
	// Hit empty → stall onset, once.
	w.Observe(&watch, 2, units.Seconds(5), units.Seconds(0), 0, 1)
	w.Observe(&watch, 2, units.Seconds(6), units.Seconds(0), 0, 0)
	if got := w.Count(KindStall); got != 1 {
		t.Fatalf("stall incidents = %d, want 1", got)
	}
	// Recover above the horizon, dip again → second underrun excursion.
	w.Observe(&watch, 2, units.Seconds(7), units.Seconds(6), 1, 0)
	w.Observe(&watch, 2, units.Seconds(8), units.Seconds(1), 1, 1)
	if got := w.Count(KindUnderrunRisk); got != 2 {
		t.Fatalf("underrun incidents after recovery = %d, want 2", got)
	}
	if got := w.Total(); got != 3 {
		t.Fatalf("total incidents = %d, want 3", got)
	}
	// The incident log carries labeled records.
	incidents := w.Log().Snapshot()
	if len(incidents) != 3 {
		t.Fatalf("incident log holds %d, want 3", len(incidents))
	}
	kinds := map[string]int{}
	for _, in := range incidents {
		if in.Session != 2 {
			t.Fatalf("incident session = %d", in.Session)
		}
		kinds[in.KindN]++
	}
	if kinds["underrun_risk"] != 2 || kinds["stall"] != 1 {
		t.Fatalf("incident kinds = %v", kinds)
	}
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	var watch SessionWatch
	w.Observe(&watch, 1, units.Seconds(0), units.Seconds(5), 1, 0)
	if w.Total() != 0 || w.Count(KindStall) != 0 || w.Log() != nil {
		t.Fatal("nil watchdog not inert")
	}
	real := NewWatchdog(nil, WatchdogConfig{})
	real.Observe(nil, 1, units.Seconds(0), units.Seconds(5), 1, 0) // nil watch is also a no-op
	if real.Total() != 0 {
		t.Fatal("nil watch observed")
	}
}

func TestWatchdogCountersRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := NewWatchdog(reg, WatchdogConfig{UnderrunHorizon: units.Seconds(4)})
	var watch SessionWatch
	w.Observe(&watch, 1, units.Seconds(0), units.Seconds(10), 0, -1)
	w.Observe(&watch, 1, units.Seconds(1), units.Seconds(1), 0, 0)
	var total float64
	for _, s := range reg.Snapshot() {
		if s.Name == "soda_qoe_incidents_total" {
			total += s.Value
		}
	}
	if total != 1 {
		t.Fatalf("registry incident counters sum = %g, want 1", total)
	}
}

func TestIncidentLogWrap(t *testing.T) {
	l := NewIncidentLog(4)
	for i := 0; i < 10; i++ {
		l.append(Incident{Session: int32(i), Kind: KindStall})
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 4 || snap[0].Session != 6 || snap[3].Session != 9 {
		t.Fatalf("wrapped snapshot = %+v", snap)
	}
	for i, in := range snap {
		if in.Seq != uint64(6+i) {
			t.Fatalf("seq[%d] = %d, want %d", i, in.Seq, 6+i)
		}
	}
}

func TestPerThousandSessions(t *testing.T) {
	if got := PerThousandSessions(5, 1000); got != 5 {
		t.Fatalf("5/1000 = %g", got)
	}
	if got := PerThousandSessions(1, 0); got != 0 {
		t.Fatalf("div-by-zero guard = %g", got)
	}
}

func TestSpansHandler(t *testing.T) {
	rec := NewRecorder(nil, 16)
	rec.Record(StageDecide, 1, 100, 10, true)
	rec.Record(StageArena, 1, 90, 5, true)
	rec.Record(StageDecide, 2, 200, 20, true)

	h := SpansHandler(rec)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/spans", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if n := countLines(rw.Body.String()); n != 3 {
		t.Fatalf("unfiltered spans = %d lines, want 3", n)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/spans?session=1&stage=decide", nil))
	sc := bufio.NewScanner(rw.Body)
	n := 0
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("span line does not parse: %v", err)
		}
		if sp.Session != 1 || sp.StageName != "decide" {
			t.Fatalf("filter leaked %+v", sp)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("filtered spans = %d, want 1", n)
	}

	for _, bad := range []string{"?limit=-1", "?limit=x", "?session=-2", "?session=x", "?stage=nope"} {
		rw = httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/spans"+bad, nil))
		if rw.Code != 400 {
			t.Errorf("%s returned %d, want 400", bad, rw.Code)
		}
	}
}

func TestIncidentsHandler(t *testing.T) {
	w := NewWatchdog(nil, WatchdogConfig{UnderrunHorizon: units.Seconds(4)})
	var w1, w2 SessionWatch
	w.Observe(&w1, 1, units.Seconds(0), units.Seconds(10), 0, -1)
	w.Observe(&w1, 1, units.Seconds(1), units.Seconds(1), 0, 0) // underrun on session 1
	w.Observe(&w2, 2, units.Seconds(0), units.Seconds(10), 0, -1)
	w.Observe(&w2, 2, units.Seconds(1), units.Seconds(0.5), 0, 0) // underrun on session 2

	h := IncidentsHandler(w.Log())
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/incidents", nil))
	if n := countLines(rw.Body.String()); n != 2 {
		t.Fatalf("incidents = %d lines, want 2", n)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/incidents?session=2&limit=5", nil))
	sc := bufio.NewScanner(rw.Body)
	for sc.Scan() {
		var in Incident
		if err := json.Unmarshal(sc.Bytes(), &in); err != nil {
			t.Fatalf("incident line does not parse: %v", err)
		}
		if in.Session != 2 || in.KindN != "underrun_risk" {
			t.Fatalf("filter leaked %+v", in)
		}
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/incidents?limit=-9", nil))
	if rw.Code != 400 {
		t.Fatalf("bad limit returned %d", rw.Code)
	}
	// A nil log serves an empty stream, not a panic.
	rw = httptest.NewRecorder()
	IncidentsHandler(nil).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/incidents", nil))
	if rw.Code != 200 || countLines(rw.Body.String()) != 0 {
		t.Fatalf("nil log: code %d, %d lines", rw.Code, countLines(rw.Body.String()))
	}
}

func TestSessionTimelineHandler(t *testing.T) {
	ring := telemetry.NewRing(64)
	for i := 0; i < 6; i++ {
		ring.Append(telemetry.DecisionEvent{
			Session: int32(i % 2), Segment: int32(i), Rung: int16(i % 3),
			Buffer: units.Seconds(5 + i), AtSeconds: units.Seconds(i * 4),
		})
	}
	rec := NewRecorder(nil, 16)
	rec.Record(StageDecide, 1, 1000, 10, true)
	w := NewWatchdog(nil, WatchdogConfig{})

	h := SessionTimelineHandler(ring, rec, w.Log())
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/sessions?id=1", nil))
	if rw.Code != 200 {
		t.Fatalf("code = %d", rw.Code)
	}
	var tl SessionTimeline
	if err := json.Unmarshal(rw.Body.Bytes(), &tl); err != nil {
		t.Fatalf("timeline does not parse: %v", err)
	}
	if tl.Session != 1 || len(tl.Decisions) != 3 || len(tl.Spans) != 1 {
		t.Fatalf("timeline = session %d, %d decisions, %d spans",
			tl.Session, len(tl.Decisions), len(tl.Spans))
	}
	for _, ev := range tl.Decisions {
		if ev.Session != 1 {
			t.Fatalf("timeline leaked session %d", ev.Session)
		}
	}

	// format=trace renders Chrome trace JSON.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/sessions?id=1&format=trace", nil))
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &trace); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	for _, bad := range []string{"", "?id=-1", "?id=x", "?id=1&format=xml"} {
		rw = httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/sessions"+bad, nil))
		if rw.Code != 400 {
			t.Errorf("%q returned %d, want 400", bad, rw.Code)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []telemetry.DecisionEvent{
		{Session: 3, Segment: 0, Rung: 2, PrevRung: -1, Buffer: units.Seconds(0), Throughput: units.Mbps(8), Bitrate: units.Mbps(4), AtSeconds: units.Seconds(0)},
		{Session: 3, Segment: 1, Rung: -1, PrevRung: 2, Buffer: units.Seconds(12), WaitSeconds: units.Seconds(1.5), AtSeconds: units.Seconds(4)},
		{Session: 4, Segment: 0, Rung: 1, PrevRung: -1, Buffer: units.Seconds(0), Throughput: units.Mbps(3), Bitrate: units.Mbps(1.5), AtSeconds: units.Seconds(0.5)},
	}
	spans := []Span{
		{Start: 1_000_000, Dur: 5_000, Session: 3, Stage: StageDecide, OK: true, StageName: "decide"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int64   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var phases = map[string]int{}
	var sawWait, sawSpan, sawMeta bool
	for _, ev := range out.TraceEvents {
		phases[ev.Ph]++
		switch {
		case ev.Name == "wait" && ev.Ph == "X":
			sawWait = true
			if ev.Dur != 1.5e6 {
				t.Errorf("wait dur = %g µs, want 1.5e6", ev.Dur)
			}
		case ev.Name == "decide" && ev.Ph == "X":
			sawSpan = true
			if ev.Ts != 1000 || ev.Dur != 5 {
				t.Errorf("span ts/dur = %g/%g µs, want 1000/5", ev.Ts, ev.Dur)
			}
		case ev.Name == "thread_name" && ev.Ph == "M":
			sawMeta = true
		}
	}
	// Every trace-event phase used must be one Perfetto understands.
	for ph := range phases {
		switch ph {
		case "X", "i", "C", "M":
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if !sawWait || !sawSpan || !sawMeta {
		t.Fatalf("missing events: wait=%v span=%v meta=%v", sawWait, sawSpan, sawMeta)
	}
}

func countLines(s string) int {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	return len(strings.Split(s, "\n"))
}
