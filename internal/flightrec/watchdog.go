package flightrec

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// IncidentKind names one QoE-consistency detector.
type IncidentKind uint8

const (
	// KindOscillation fires when a session switches rungs on too many of
	// the last OscillationWindow decisions — the inconsistency SODA's
	// time-based objective exists to suppress.
	KindOscillation IncidentKind = iota
	// KindStall fires at stall onset: the buffer hit empty on a decision
	// after playback had started.
	KindStall
	// KindUnderrunRisk fires when the buffer drops below the configured
	// horizon while still positive — the early-warning band.
	KindUnderrunRisk

	// NumIncidentKinds sizes per-kind arrays.
	NumIncidentKinds = int(KindUnderrunRisk) + 1
)

var incidentKindNames = [NumIncidentKinds]string{
	"oscillation", "stall", "underrun_risk",
}

// String returns the kind's exposition label.
func (k IncidentKind) String() string {
	if int(k) < NumIncidentKinds {
		return incidentKindNames[k]
	}
	return "unknown"
}

// Incident is one watchdog detection, the unit of /debug/incidents.
type Incident struct {
	Seq     uint64        `json:"seq"`
	Session int32         `json:"session"`
	Kind    IncidentKind  `json:"-"`
	KindN   string        `json:"kind"`
	At      units.Seconds `json:"at_s"`
	Buffer  units.Seconds `json:"buffer_s"`
	Rung    int16         `json:"rung"`
}

// IncidentLog is a bounded overwrite-oldest log of incidents, the same
// shape as telemetry.Ring: one mutex, a power-of-two buffer, a monotone
// sequence counter. Incidents are rare by construction (one per excursion,
// not per decision), so the lock is never contended on the hot path.
type IncidentLog struct {
	mu sync.Mutex
	//soda:guard mu
	buf  []Incident
	mask uint64
	//soda:guard mu
	next uint64
}

// DefaultIncidentCapacity bounds the incident log.
const DefaultIncidentCapacity = 1024

// NewIncidentLog builds a log holding the last capacity incidents
// (rounded up to a power of two; non-positive = DefaultIncidentCapacity).
func NewIncidentLog(capacity int) *IncidentLog {
	if capacity <= 0 {
		capacity = DefaultIncidentCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &IncidentLog{buf: make([]Incident, n), mask: uint64(n - 1)}
}

// append records one incident, overwriting the oldest once full.
//
//soda:noalloc
func (l *IncidentLog) append(in Incident) {
	l.mu.Lock()
	in.Seq = l.next
	in.KindN = in.Kind.String()
	l.buf[l.next&l.mask] = in
	l.next++
	l.mu.Unlock()
}

// Total returns the number of incidents ever appended.
func (l *IncidentLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

//soda:locked mu
func (l *IncidentLog) held() int {
	if l.next < uint64(len(l.buf)) {
		return int(l.next)
	}
	return len(l.buf)
}

// Snapshot copies the held incidents, oldest first.
func (l *IncidentLog) Snapshot() []Incident {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.held()
	out := make([]Incident, n)
	start := l.next - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = l.buf[(start+uint64(i))&l.mask]
	}
	return out
}

// WatchdogConfig tunes the detectors; the zero value selects the defaults.
type WatchdogConfig struct {
	// OscillationWindow is the sliding window of recent decisions a switch
	// count is taken over (2..64 decisions; default 16).
	OscillationWindow int
	// OscillationSwitches is the switch count within the window that flags
	// an oscillation incident (default half the window).
	OscillationSwitches int
	// UnderrunHorizon is the buffer level below which a session is at
	// underrun risk (default 4s — one segment of headroom).
	UnderrunHorizon units.Seconds
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.OscillationWindow <= 0 {
		c.OscillationWindow = 16
	}
	if c.OscillationWindow < 2 {
		c.OscillationWindow = 2
	}
	if c.OscillationWindow > 64 {
		c.OscillationWindow = 64
	}
	if c.OscillationSwitches <= 0 {
		c.OscillationSwitches = c.OscillationWindow / 2
	}
	if c.UnderrunHorizon <= 0 {
		c.UnderrunHorizon = 4
	}
	return c
}

// SessionWatch is one session's detector state: a switch-history bitmask and
// per-detector hysteresis flags. It is plain pointer-free data so callers
// embed it in bulk storage (the arena slab carries one per slot) and a slot
// recycle resets it with a zeroing store.
type SessionWatch struct {
	// switches has bit i set if the i-th most recent decision switched rungs.
	switches uint64
	// decisions counts observed decisions (saturating at the window makes
	// no difference; it only gates the warmup).
	decisions uint32
	// started latches once the buffer has been positive — sessions begin at
	// buffer 0, and flagging the fill phase as an underrun would make every
	// session open with two false incidents.
	started bool
	// inOscillation/inStall/inUnderrun are the hysteresis latches: one
	// incident per excursion, re-armed when the condition clears.
	inOscillation bool
	inStall       bool
	inUnderrun    bool
}

// Watchdog is the online QoE-consistency monitor: allocation-free streaming
// detectors over the decision stream, counting incidents per kind and
// appending to a bounded incident log. One Watchdog serves any number of
// sessions; per-session state lives in caller-owned SessionWatch values.
// A nil Watchdog is a valid no-op.
type Watchdog struct {
	cfg        WatchdogConfig
	windowMask uint64
	counts     [NumIncidentKinds]atomic.Uint64
	counters   [NumIncidentKinds]*telemetry.Counter
	log        *IncidentLog
}

// NewWatchdog builds a watchdog, registering the per-kind
// soda_qoe_incidents_total counters on reg (nil = private registry).
func NewWatchdog(reg *telemetry.Registry, cfg WatchdogConfig) *Watchdog {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	w := &Watchdog{
		cfg:        cfg,
		windowMask: (uint64(1) << cfg.OscillationWindow) - 1,
		log:        NewIncidentLog(0),
	}
	for k := 0; k < NumIncidentKinds; k++ {
		w.counters[k] = reg.Counter(
			"soda_qoe_incidents_total",
			"QoE-consistency watchdog incidents, by kind",
			telemetry.None,
			telemetry.Label{Key: "kind", Value: IncidentKind(k).String()},
		)
	}
	return w
}

// Config returns the effective (defaulted) configuration.
func (w *Watchdog) Config() WatchdogConfig { return w.cfg }

// Log returns the incident log (nil for a nil watchdog).
func (w *Watchdog) Log() *IncidentLog {
	if w == nil {
		return nil
	}
	return w.log
}

// Observe feeds one decision to the detectors: the session's watch state,
// its clock, the buffer level when Decide was called, the chosen and
// previous rungs (rung < 0 = wait), and whether the decision was a wait.
// Nil-safe no-op; allocation-free.
//
//soda:noalloc
func (w *Watchdog) Observe(watch *SessionWatch, session int32, at, buffer units.Seconds, rung, prevRung int16) {
	if w == nil || watch == nil {
		return
	}
	// Oscillation: shift the switch history, count the window.
	switched := rung >= 0 && prevRung >= 0 && rung != prevRung
	watch.switches = (watch.switches << 1) & w.windowMask
	if switched {
		watch.switches |= 1
	}
	if watch.decisions < uint32(w.cfg.OscillationWindow) {
		watch.decisions++
	}
	nSwitch := bits.OnesCount64(watch.switches)
	if watch.decisions >= uint32(w.cfg.OscillationWindow) && nSwitch >= w.cfg.OscillationSwitches {
		if !watch.inOscillation {
			watch.inOscillation = true
			w.incident(KindOscillation, session, at, buffer, rung)
		}
	} else if nSwitch <= w.cfg.OscillationSwitches/2 {
		watch.inOscillation = false
	}

	if buffer > 0 {
		watch.started = true
	}
	if !watch.started {
		return
	}
	// Stall onset: the buffer hit empty after playback had started.
	if buffer <= 0 {
		if !watch.inStall {
			watch.inStall = true
			w.incident(KindStall, session, at, buffer, rung)
		}
	} else {
		watch.inStall = false
	}
	// Underrun risk: below the horizon but not (yet) stalled.
	if buffer > 0 && buffer < w.cfg.UnderrunHorizon {
		if !watch.inUnderrun {
			watch.inUnderrun = true
			w.incident(KindUnderrunRisk, session, at, buffer, rung)
		}
	} else if buffer >= w.cfg.UnderrunHorizon {
		watch.inUnderrun = false
	}
}

//soda:noalloc
func (w *Watchdog) incident(kind IncidentKind, session int32, at, buffer units.Seconds, rung int16) {
	w.counts[kind].Add(1)
	w.counters[kind].Inc()
	w.log.append(Incident{
		Session: session, Kind: kind, At: at, Buffer: buffer, Rung: rung,
	})
}

// Count returns the total incidents of one kind.
func (w *Watchdog) Count(kind IncidentKind) uint64 {
	if w == nil || int(kind) >= NumIncidentKinds {
		return 0
	}
	return w.counts[kind].Load()
}

// Total returns the total incidents across kinds.
func (w *Watchdog) Total() uint64 {
	if w == nil {
		return 0
	}
	var n uint64
	for k := 0; k < NumIncidentKinds; k++ {
		n += w.counts[k].Load()
	}
	return n
}

// PerThousandSessions scales a raw incident count to the fleet-report and
// gate-schema denomination.
func PerThousandSessions(incidents uint64, sessions int) float64 {
	if sessions <= 0 {
		return 0
	}
	return float64(incidents) * 1000 / float64(sessions)
}
