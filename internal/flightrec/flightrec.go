// Package flightrec is the serving pipeline's flight recorder: fixed-slot,
// ring-buffered stage-latency spans, an online QoE-consistency watchdog over
// the decision stream, and the timeline/trace exports built on both plus the
// telemetry decision ring.
//
// The package follows the same two contracts as internal/telemetry:
//
//   - Purity: nothing here is visible to a controller. Harnesses (httpseg,
//     sim, sim.Fleet, loadgen) record spans and feed the watchdog from the
//     call site after Decide returns, so `abrtest.FlightRecConformance` can
//     pin decisions bit-identical with and without the recorder attached.
//   - Zero allocation on the hot path: span recording is a cursor fetch-add
//     plus four atomic word stores into pre-allocated per-stage slots, and
//     the watchdog's detectors are integer state machines embedded in
//     caller-owned memory (`SessionWatch` lives inside the arena slab).
//     `BenchmarkFlightRecOverhead` gates the end-to-end cost at ≤5%
//     ns/decision, and the recording functions are `//soda:noalloc`.
//
// Span slots use a per-slot seqlock so writers are lock-free and readers
// race-detector-clean: a writer claims a slot by CASing its version from
// even to odd, stores the span's words atomically, and releases with
// version+2; a writer that finds the version odd (a lapping writer still
// mid-store) drops the span and counts the drop rather than spinning.
// Readers validate the version before and after copying the words.
//
// Like telemetry, the JSONL/trace exports speak raw float64 — the package
// is a sanctioned laundering site:
//
//soda:wire-boundary
package flightrec

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Stage names one segment of the serving pipeline a span can cover. The
// order is admission order; Respond brackets the whole decide call.
type Stage uint8

const (
	// StageRateLimit is the per-client token-bucket admission check.
	StageRateLimit Stage = iota
	// StageInflight is the in-flight semaphore acquire.
	StageInflight
	// StageSession is the session-table acquire (hash, shard lock, refcount).
	StageSession
	// StageArena is the arena handle resolution (spine + generation check).
	StageArena
	// StageDecide is the controller Decide call — table lookup, shared-cache
	// hit, or solver fallback, whichever the decision took.
	StageDecide
	// StageRespond is the whole serving call, admission through reply.
	StageRespond

	// NumStages sizes per-stage arrays.
	NumStages = int(StageRespond) + 1
)

// stageNames are the label values of soda_server_stage_latency_seconds and
// the "stage" field of the JSONL/trace exports.
var stageNames = [NumStages]string{
	"ratelimit", "inflight", "session", "arena", "decide", "respond",
}

// String returns the stage's exposition label.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded pipeline stage: where, when (nanoseconds on the
// recorder's monotonic clock), how long, for which session, and whether the
// stage admitted the request (OK false = rejected/shed/stale).
type Span struct {
	Start   int64 `json:"start_ns"`
	Dur     int64 `json:"dur_ns"`
	Session int32 `json:"session"`
	Stage   Stage `json:"-"`
	OK      bool  `json:"ok"`
	// StageName is Stage rendered for the wire; filled on snapshot.
	StageName string `json:"stage"`
}

// spanWords is the number of atomic words one slot's payload packs into:
// word 0 start ns, word 1 duration ns, word 2 session|stage|ok.
const spanWords = 3

// stageRing is one stage's fixed ring of seqlock slots. All state is atomic
// words — no mutex, no pointer, safe for any number of concurrent writers
// and readers.
type stageRing struct {
	cursor  atomic.Uint64 // total spans ever claimed; slot = seq & mask
	dropped atomic.Uint64 // spans dropped on lap collision
	mask    uint64
	ver     []atomic.Uint64 // per-slot seqlock version; odd = write in progress
	data    []atomic.Uint64 // spanWords words per slot
}

func newStageRing(capacity int) *stageRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &stageRing{
		mask: uint64(n - 1),
		ver:  make([]atomic.Uint64, n),
		data: make([]atomic.Uint64, n*spanWords),
	}
}

// record claims the next slot and stores one span. A slot whose previous
// write is still in progress (a writer lapped the whole ring mid-store)
// is dropped, not spun on — the recorder never blocks the serving path.
//
//soda:noalloc
func (r *stageRing) record(session int32, startNS, durNS int64, ok bool) {
	seq := r.cursor.Add(1) - 1
	i := seq & r.mask
	v := r.ver[i].Load()
	if v&1 != 0 || !r.ver[i].CompareAndSwap(v, v+1) {
		r.dropped.Add(1)
		return
	}
	base := i * spanWords
	r.data[base].Store(uint64(startNS))
	r.data[base+1].Store(uint64(durNS))
	var okBit uint64
	if ok {
		okBit = 1
	}
	r.data[base+2].Store(uint64(uint32(session))<<32 | okBit<<8)
	r.ver[i].Store(v + 2)
}

// snapshot appends the ring's consistent spans to dst, oldest slot first
// relative to the cursor. Slots mid-write or rewritten during the copy are
// skipped — the reader never blocks a writer.
func (r *stageRing) snapshot(stage Stage, dst []Span) []Span {
	end := r.cursor.Load()
	n := uint64(len(r.ver))
	start := uint64(0)
	if end > n {
		start = end - n
	}
	for seq := start; seq < end; seq++ {
		i := seq & r.mask
		v := r.ver[i].Load()
		if v&1 != 0 {
			continue
		}
		base := i * spanWords
		w0 := r.data[base].Load()
		w1 := r.data[base+1].Load()
		w2 := r.data[base+2].Load()
		if r.ver[i].Load() != v {
			continue
		}
		dst = append(dst, Span{
			Start:     int64(w0),
			Dur:       int64(w1),
			Session:   int32(uint32(w2 >> 32)),
			Stage:     stage,
			OK:        (w2>>8)&1 == 1,
			StageName: stage.String(),
		})
	}
	return dst
}

// DefaultSpansPerStage holds a few seconds of per-stage serving traffic —
// the same "context around the incident" sizing as the decision ring.
const DefaultSpansPerStage = 4096

// latency buckets for the per-stage histograms: 100ns..100ms, the range
// between an arena load and a contended solver fallback.
var stageLatencyBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1,
}

// Recorder is the stage-latency flight recorder: one seqlock span ring and
// one latency histogram per pipeline stage, sharing a monotonic epoch. A nil
// Recorder is a valid no-op, so harnesses wire it unconditionally.
type Recorder struct {
	rings [NumStages]*stageRing
	hist  [NumStages]*telemetry.Histogram
	epoch time.Time
}

// NewRecorder builds a recorder with perStage slots per pipeline stage
// (non-positive = DefaultSpansPerStage), registering the per-stage
// soda_server_stage_latency_seconds histograms and the dropped-span counter
// on reg (nil = a private registry; the rings still work).
func NewRecorder(reg *telemetry.Registry, perStage int) *Recorder {
	if perStage <= 0 {
		perStage = DefaultSpansPerStage
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r := &Recorder{epoch: time.Now()}
	for s := 0; s < NumStages; s++ {
		r.rings[s] = newStageRing(perStage)
		r.hist[s] = reg.Histogram(
			"soda_server_stage_latency_seconds",
			"serving pipeline stage latency, by stage",
			telemetry.USeconds, stageLatencyBuckets,
			telemetry.Label{Key: "stage", Value: Stage(s).String()},
		)
	}
	return r
}

// Now returns nanoseconds since the recorder's epoch — the clock span
// start/duration stamps are denominated in. Nil-safe (returns 0).
//
//soda:noalloc
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Record stores one stage span and feeds the stage's latency histogram.
// Nil-safe no-op, so call sites need no branches.
//
//soda:noalloc
func (r *Recorder) Record(stage Stage, session int32, startNS, durNS int64, ok bool) {
	if r == nil || int(stage) >= NumStages {
		return
	}
	r.rings[stage].record(session, startNS, durNS, ok)
	r.hist[stage].Observe(float64(durNS) * 1e-9)
}

// Dropped returns the total spans dropped across stages (lap collisions).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for s := 0; s < NumStages; s++ {
		n += r.rings[s].dropped.Load()
	}
	return n
}

// Snapshot copies every stage ring's consistent spans, ordered by stage
// then oldest first. Nil-safe (returns nil).
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for s := 0; s < NumStages; s++ {
		out = r.rings[s].snapshot(Stage(s), out)
	}
	return out
}

// SessionSpans returns the recorder's spans for one session, every stage,
// oldest first per stage.
func (r *Recorder) SessionSpans(session int32) []Span {
	all := r.Snapshot()
	kept := all[:0]
	for _, sp := range all {
		if sp.Session == session {
			kept = append(kept, sp)
		}
	}
	return kept
}
