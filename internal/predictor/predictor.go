// Package predictor implements the throughput predictors used across the
// paper's evaluation:
//
//   - moving average and exponential moving average, the two predictors
//     shipped with dash.js that the paper profiles in Figure 7;
//   - the sliding-window predictor SODA uses in the production deployment
//     (§6.3);
//   - the harmonic-mean predictor traditionally paired with MPC;
//   - a perfect short-term predictor and its white-noise-corrupted variant,
//     used for the intrinsic-sensitivity study of Figure 11;
//   - an empirical-quantile predictor standing in for Fugu's learned
//     stochastic predictor (§6.2.2; see DESIGN.md substitutions).
//
// Predictors observe per-download throughput samples and answer point (and
// optionally quantile) predictions for a future horizon. All quantities are
// expressed in the internal/units types, so a predictor cannot silently mix
// seconds and Mb/s. SODA deliberately works with simple predictors (§5.2):
// there is no systematic-bias correction, no learned model, no
// device-specific tuning.
package predictor

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/trace"
	"repro/internal/units"
)

// Sample is one observed download: mean throughput over a duration that
// ended at the given stream time.
type Sample struct {
	Mbps     units.Mbps
	Duration units.Seconds // span of the observation
	EndTime  units.Seconds // stream time at which the observation completed
}

// Predictor forecasts near-future throughput.
type Predictor interface {
	// Observe folds a completed download measurement into the predictor.
	Observe(s Sample)
	// Predict returns the predicted mean throughput over [now, now+horizon].
	// History-based predictors ignore both arguments.
	Predict(now, horizon units.Seconds) units.Mbps
	// Reset clears all history.
	Reset()
}

// QuantilePredictor is implemented by predictors that can answer
// distributional queries, used by the Fugu-style controller.
type QuantilePredictor interface {
	Predictor
	// Quantile returns the q-th quantile (0..1) of predicted throughput.
	Quantile(now, horizon units.Seconds, q float64) units.Mbps
}

// EMA is an exponential moving average over throughput samples, the default
// predictor in dash.js and the predictor used for the paper's numerical
// simulations (§6.1.1). The smoothing weight of each observation scales with
// its duration via the configured half-life.
type EMA struct {
	HalfLife units.Seconds
	estimate units.Mbps
	weight   float64
}

// NewEMA returns an EMA with the given half-life. dash.js uses a fast/slow
// half-life pair of 3 s and 8 s; 4 s is a reasonable single value.
func NewEMA(halfLife units.Seconds) *EMA {
	if halfLife <= 0 {
		panic("predictor: non-positive EMA half-life")
	}
	return &EMA{HalfLife: halfLife}
}

// Observe implements Predictor.
func (e *EMA) Observe(s Sample) {
	if s.Duration <= 0 || s.Mbps < 0 {
		return
	}
	alpha := math.Pow(0.5, float64(s.Duration/e.HalfLife))
	e.estimate = e.estimate.Scale(alpha) + s.Mbps.Scale(1-alpha)
	e.weight = alpha*e.weight + (1 - alpha)
}

// Predict implements Predictor. Before any observation it returns 0.
func (e *EMA) Predict(_, _ units.Seconds) units.Mbps {
	if e.weight == 0 {
		return 0
	}
	// Bias-corrected estimate (zero-initialization correction). Plain
	// division, not Scale(1/w): the reciprocal would round differently.
	return units.Mbps(float64(e.estimate) / e.weight)
}

// Reset implements Predictor.
func (e *EMA) Reset() { e.estimate, e.weight = 0, 0 }

// SafeEMA is the dash.js-flavoured safe throughput estimator: the minimum of
// a fast and a slow exponential moving average, additionally capped by the
// most recent sample when that sample is lower. The pessimistic minimum
// reacts within one download to a throughput collapse (critical on fade
// onset, when a single in-flight segment can drain most of a live buffer)
// while ramping up conservatively.
type SafeEMA struct {
	fast *EMA
	slow *EMA
	last units.Mbps
}

// NewSafeEMA returns a SafeEMA with the dash.js half-life pair (3 s, 8 s).
func NewSafeEMA() *SafeEMA {
	return &SafeEMA{fast: NewEMA(units.Seconds(3)), slow: NewEMA(units.Seconds(8))}
}

// Observe implements Predictor.
func (s *SafeEMA) Observe(sm Sample) {
	if sm.Duration <= 0 || sm.Mbps < 0 {
		return
	}
	s.fast.Observe(sm)
	s.slow.Observe(sm)
	s.last = sm.Mbps
}

// Predict implements Predictor.
func (s *SafeEMA) Predict(now, horizon units.Seconds) units.Mbps {
	est := min(s.fast.Predict(now, horizon), s.slow.Predict(now, horizon))
	if s.last > 0 && s.last < est {
		// A fresh sample below the averages is the earliest possible signal
		// of a collapse; trust it.
		return s.last
	}
	return est
}

// Reset implements Predictor.
func (s *SafeEMA) Reset() {
	s.fast.Reset()
	s.slow.Reset()
	s.last = 0
}

// MovingAverage predicts the mean of the last Window samples — the "moving
// average predictor" profiled in Figure 7.
type MovingAverage struct {
	Window  int
	samples []units.Mbps
}

// NewMovingAverage returns a MovingAverage over the last window samples.
func NewMovingAverage(window int) *MovingAverage {
	if window <= 0 {
		panic("predictor: non-positive moving-average window")
	}
	return &MovingAverage{Window: window}
}

// Observe implements Predictor.
func (m *MovingAverage) Observe(s Sample) {
	if s.Duration <= 0 || s.Mbps < 0 {
		return
	}
	m.samples = append(m.samples, s.Mbps)
	if len(m.samples) > m.Window {
		m.samples = m.samples[len(m.samples)-m.Window:]
	}
}

// Predict implements Predictor.
func (m *MovingAverage) Predict(_, _ units.Seconds) units.Mbps {
	if len(m.samples) == 0 {
		return 0
	}
	var sum units.Mbps
	for _, x := range m.samples {
		sum += x
	}
	return units.Mbps(float64(sum) / float64(len(m.samples)))
}

// Reset implements Predictor.
func (m *MovingAverage) Reset() { m.samples = m.samples[:0] }

// SlidingWindow predicts the duration-weighted mean throughput over the most
// recent Window of observations: the "simple sliding window-based
// throughput predictor" SODA used on all production platforms (§6.3).
type SlidingWindow struct {
	Window  units.Seconds
	samples []Sample
}

// NewSlidingWindow returns a SlidingWindow over the trailing window.
func NewSlidingWindow(window units.Seconds) *SlidingWindow {
	if window <= 0 {
		panic("predictor: non-positive sliding window")
	}
	return &SlidingWindow{Window: window}
}

// Observe implements Predictor.
func (w *SlidingWindow) Observe(s Sample) {
	if s.Duration <= 0 || s.Mbps < 0 {
		return
	}
	w.samples = append(w.samples, s)
	cutoff := s.EndTime - w.Window
	i := 0
	for i < len(w.samples) && w.samples[i].EndTime < cutoff {
		i++
	}
	w.samples = w.samples[i:]
}

// Predict implements Predictor.
func (w *SlidingWindow) Predict(_, _ units.Seconds) units.Mbps {
	var num units.Megabits
	var den units.Seconds
	for _, s := range w.samples {
		num += s.Mbps.MegabitsIn(s.Duration)
		den += s.Duration
	}
	if den == 0 {
		return 0
	}
	return num.Over(den)
}

// Reset implements Predictor.
func (w *SlidingWindow) Reset() { w.samples = w.samples[:0] }

// HarmonicMean predicts the harmonic mean of the last Window samples, the
// predictor proposed for MPC by Yin et al. (robust to outlier spikes).
type HarmonicMean struct {
	Window  int
	samples []units.Mbps
}

// NewHarmonicMean returns a HarmonicMean over the last window samples.
func NewHarmonicMean(window int) *HarmonicMean {
	if window <= 0 {
		panic("predictor: non-positive harmonic-mean window")
	}
	return &HarmonicMean{Window: window}
}

// Observe implements Predictor.
func (h *HarmonicMean) Observe(s Sample) {
	if s.Duration <= 0 || s.Mbps <= 0 {
		return
	}
	h.samples = append(h.samples, s.Mbps)
	if len(h.samples) > h.Window {
		h.samples = h.samples[len(h.samples)-h.Window:]
	}
}

// Predict implements Predictor.
func (h *HarmonicMean) Predict(_, _ units.Seconds) units.Mbps {
	if len(h.samples) == 0 {
		return 0
	}
	inv := 0.0 // accumulated in 1/Mbps, a dimension units does not name
	for _, x := range h.samples {
		inv += 1 / float64(x)
	}
	return units.Mbps(float64(len(h.samples)) / inv)
}

// Reset implements Predictor.
func (h *HarmonicMean) Reset() { h.samples = h.samples[:0] }

// Perfect is an oracle that returns the true mean throughput of the trace
// over the queried horizon — the "perfect short-term throughput predictor"
// of §6.1.4.
type Perfect struct {
	Trace *trace.Trace
}

// Observe implements Predictor (no-op: the oracle needs no history).
func (p *Perfect) Observe(Sample) {}

// Predict implements Predictor.
func (p *Perfect) Predict(now, horizon units.Seconds) units.Mbps {
	if horizon <= 0 {
		horizon = units.Seconds(1e-3)
	}
	return p.Trace.MeanOver(now, horizon)
}

// Reset implements Predictor.
func (p *Perfect) Reset() {}

// Noisy corrupts a base predictor with multiplicative white noise:
// prediction * (1 + NoiseLevel*Z) with Z standard normal, clamped to stay
// positive. This reproduces the Figure 11 experiment, where white noise is
// gradually added to perfect predictions.
type Noisy struct {
	Base       Predictor
	NoiseLevel float64 // e.g. 0.3 for 30% noise
	rng        *rand.Rand
}

// NewNoisy wraps base with the given noise level and seed.
func NewNoisy(base Predictor, noiseLevel float64, seed uint64) *Noisy {
	return &Noisy{Base: base, NoiseLevel: noiseLevel, rng: rand.New(rand.NewPCG(seed, 0xabcdef))}
}

// Observe implements Predictor.
func (n *Noisy) Observe(s Sample) { n.Base.Observe(s) }

// Predict implements Predictor.
func (n *Noisy) Predict(now, horizon units.Seconds) units.Mbps {
	base := n.Base.Predict(now, horizon)
	if base <= 0 {
		return base
	}
	factor := 1 + n.NoiseLevel*n.rng.NormFloat64()
	if factor < 0.05 {
		factor = 0.05
	}
	return base.Scale(factor)
}

// Reset implements Predictor.
func (n *Noisy) Reset() { n.Base.Reset() }

// EmpiricalQuantile keeps the recent throughput history and answers both a
// point prediction (its median) and arbitrary quantiles. It stands in for
// Fugu's learned stochastic transmit-time predictor: instead of a neural
// density model it serves the empirical distribution of recent observations,
// which captures the same "plan against uncertainty" capability.
type EmpiricalQuantile struct {
	Window  int
	samples []units.Mbps
}

// NewEmpiricalQuantile returns an EmpiricalQuantile over the last window
// samples.
func NewEmpiricalQuantile(window int) *EmpiricalQuantile {
	if window <= 0 {
		panic("predictor: non-positive quantile window")
	}
	return &EmpiricalQuantile{Window: window}
}

// Observe implements Predictor.
func (e *EmpiricalQuantile) Observe(s Sample) {
	if s.Duration <= 0 || s.Mbps < 0 {
		return
	}
	e.samples = append(e.samples, s.Mbps)
	if len(e.samples) > e.Window {
		e.samples = e.samples[len(e.samples)-e.Window:]
	}
}

// Predict implements Predictor, returning the median.
func (e *EmpiricalQuantile) Predict(now, horizon units.Seconds) units.Mbps {
	return e.Quantile(now, horizon, 0.5)
}

// Quantile implements QuantilePredictor.
func (e *EmpiricalQuantile) Quantile(_, _ units.Seconds, q float64) units.Mbps {
	if len(e.samples) == 0 {
		return 0
	}
	sorted := make([]units.Mbps, len(e.samples))
	copy(sorted, e.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo].Scale(1-frac) + sorted[lo+1].Scale(frac)
}

// Reset implements Predictor.
func (e *EmpiricalQuantile) Reset() { e.samples = e.samples[:0] }

// Compile-time interface checks.
var (
	_ Predictor         = (*EMA)(nil)
	_ Predictor         = (*MovingAverage)(nil)
	_ Predictor         = (*SlidingWindow)(nil)
	_ Predictor         = (*HarmonicMean)(nil)
	_ Predictor         = (*Perfect)(nil)
	_ Predictor         = (*Noisy)(nil)
	_ QuantilePredictor = (*EmpiricalQuantile)(nil)
)

var _ Predictor = (*SafeEMA)(nil)
