package predictor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/units"
)

func obs(mbps float64) Sample {
	return Sample{Mbps: units.Mbps(mbps), Duration: units.Seconds(2), EndTime: units.Seconds(0)}
}

func TestEMAConvergesToConstant(t *testing.T) {
	e := NewEMA(units.Seconds(4))
	for i := 0; i < 50; i++ {
		e.Observe(obs(10))
	}
	if got := e.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-10)) > 1e-6 {
		t.Errorf("EMA of constant stream = %v, want 10", got)
	}
}

func TestEMABiasCorrectionFirstSample(t *testing.T) {
	e := NewEMA(units.Seconds(4))
	e.Observe(obs(8))
	// With bias correction a single observation should predict itself.
	if got := e.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-8)) > 1e-9 {
		t.Errorf("EMA after one sample = %v, want 8", got)
	}
}

func TestEMAWeighting(t *testing.T) {
	e := NewEMA(units.Seconds(4))
	for i := 0; i < 30; i++ {
		e.Observe(obs(2))
	}
	e.Observe(obs(20))
	got := e.Predict(units.Seconds(0), units.Seconds(2))
	// Newer sample should pull the estimate noticeably above 2 but far
	// below 20 (half-life 4 s, sample duration 2 s => alpha ~ 0.707).
	if got < 5 || got > 10 {
		t.Errorf("EMA after spike = %v, want within (5, 10)", got)
	}
}

func TestEMAEmptyAndReset(t *testing.T) {
	e := NewEMA(units.Seconds(4))
	if e.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("empty EMA should predict 0")
	}
	e.Observe(obs(5))
	e.Reset()
	if e.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("reset EMA should predict 0")
	}
	e.Observe(Sample{Mbps: units.Mbps(-1), Duration: units.Seconds(2)})
	e.Observe(Sample{Mbps: units.Mbps(1), Duration: units.Seconds(0)})
	if e.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("invalid samples should be ignored")
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("empty MA should predict 0")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		m.Observe(obs(v))
	}
	if got := m.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-4)) > 1e-12 {
		t.Errorf("MA = %v, want mean(3,4,5)=4", got)
	}
	m.Reset()
	if m.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("reset MA should predict 0")
	}
}

func TestSlidingWindow(t *testing.T) {
	w := NewSlidingWindow(units.Seconds(10))
	w.Observe(Sample{Mbps: units.Mbps(100), Duration: units.Seconds(2), EndTime: units.Seconds(2)})
	w.Observe(Sample{Mbps: units.Mbps(10), Duration: units.Seconds(2), EndTime: units.Seconds(20)})
	// The first observation fell out of the 10 s window ending at t=20.
	if got := w.Predict(units.Seconds(20), units.Seconds(2)); math.Abs(float64(got-10)) > 1e-12 {
		t.Errorf("sliding window = %v, want 10", got)
	}
	// Duration weighting.
	w.Reset()
	w.Observe(Sample{Mbps: units.Mbps(4), Duration: units.Seconds(3), EndTime: units.Seconds(5)})
	w.Observe(Sample{Mbps: units.Mbps(10), Duration: units.Seconds(1), EndTime: units.Seconds(6)})
	want := (4*3 + 10*1) / 4.0
	if got := w.Predict(units.Seconds(6), units.Seconds(2)); math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("weighted sliding window = %v, want %v", got, want)
	}
}

func TestHarmonicMean(t *testing.T) {
	h := NewHarmonicMean(5)
	if h.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("empty harmonic mean should predict 0")
	}
	h.Observe(obs(2))
	h.Observe(obs(8))
	want := 2 / (1/2.0 + 1/8.0)
	if got := h.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("harmonic mean = %v, want %v", got, want)
	}
	// Harmonic mean is dominated by the smallest sample: robust to spikes.
	h.Observe(obs(1000))
	if got := h.Predict(units.Seconds(0), units.Seconds(2)); got > 10 {
		t.Errorf("harmonic mean after spike = %v, should stay small", got)
	}
	// Zero samples ignored rather than poisoning the mean.
	h.Observe(Sample{Mbps: units.Mbps(0), Duration: units.Seconds(2)})
	if math.IsInf(float64(h.Predict(units.Seconds(0), units.Seconds(2))), 0) || math.IsNaN(float64(h.Predict(units.Seconds(0), units.Seconds(2)))) {
		t.Error("zero sample poisoned harmonic mean")
	}
}

func TestPerfect(t *testing.T) {
	tr := trace.New([]trace.Sample{{Duration: units.Seconds(1), Mbps: units.Mbps(4)}, {Duration: units.Seconds(1), Mbps: units.Mbps(1)}, {Duration: units.Seconds(2), Mbps: units.Mbps(2)}})
	p := &Perfect{Trace: tr}
	if got := p.Predict(units.Seconds(0), units.Seconds(1)); math.Abs(float64(got-4)) > 1e-12 {
		t.Errorf("Perfect(0,1) = %v", got)
	}
	if got := p.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-2.5)) > 1e-12 {
		t.Errorf("Perfect(0,2) = %v", got)
	}
	p.Observe(obs(999)) // no-op
	p.Reset()           // no-op
	if got := p.Predict(units.Seconds(0), units.Seconds(1)); math.Abs(float64(got-4)) > 1e-12 {
		t.Errorf("Perfect after Observe/Reset = %v", got)
	}
}

func TestNoisyZeroNoiseIsExact(t *testing.T) {
	tr := trace.Constant(units.Mbps(6), units.Seconds(100))
	n := NewNoisy(&Perfect{Trace: tr}, 0, 1)
	for i := 0; i < 10; i++ {
		if got := n.Predict(units.Seconds(i), units.Seconds(2)); math.Abs(float64(got-6)) > 1e-12 {
			t.Errorf("zero-noise prediction = %v", got)
		}
	}
}

func TestNoisyStatistics(t *testing.T) {
	tr := trace.Constant(units.Mbps(10), units.Seconds(1000))
	n := NewNoisy(&Perfect{Trace: tr}, 0.3, 7)
	var sum, sumSq float64
	const k = 20000
	for i := 0; i < k; i++ {
		v := float64(n.Predict(units.Seconds(0), units.Seconds(2)))
		if v <= 0 {
			t.Fatalf("noisy prediction non-positive: %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / k
	sd := math.Sqrt(sumSq/k - mean*mean)
	if math.Abs(mean-10) > 0.15 {
		t.Errorf("noisy mean = %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.25 {
		t.Errorf("noisy sd = %v, want ~3 (30%% of 10)", sd)
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	e := NewEmpiricalQuantile(10)
	if e.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("empty quantile predictor should predict 0")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		e.Observe(obs(v))
	}
	if got := e.Quantile(units.Seconds(0), units.Seconds(2), 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := e.Quantile(units.Seconds(0), units.Seconds(2), 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := e.Predict(units.Seconds(0), units.Seconds(2)); math.Abs(float64(got-3)) > 1e-12 {
		t.Errorf("median = %v", got)
	}
	if got := e.Quantile(units.Seconds(0), units.Seconds(2), 0.25); math.Abs(float64(got-2)) > 1e-12 {
		t.Errorf("q25 = %v", got)
	}
	// Window trimming keeps the most recent samples.
	for _, v := range []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10} {
		e.Observe(obs(v))
	}
	if got := e.Quantile(units.Seconds(0), units.Seconds(2), 0); got != 10 {
		t.Errorf("after window roll, q0 = %v", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		e := NewEmpiricalQuantile(64)
		n := 1 + rng.IntN(40)
		for i := 0; i < n; i++ {
			e.Observe(obs(rng.Float64() * 50))
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := float64(e.Quantile(units.Seconds(0), units.Seconds(2), q))
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"EMA":       func() { NewEMA(units.Seconds(0)) },
		"MA":        func() { NewMovingAverage(0) },
		"Sliding":   func() { NewSlidingWindow(units.Seconds(-1)) },
		"Harmonic":  func() { NewHarmonicMean(0) },
		"Empirical": func() { NewEmpiricalQuantile(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor should panic on invalid input", name)
				}
			}()
			fn()
		}()
	}
}

// Property: history predictors track a constant stream exactly after warmup.
func TestPredictorsTrackConstant(t *testing.T) {
	preds := map[string]Predictor{
		"ema":      NewEMA(units.Seconds(4)),
		"ma":       NewMovingAverage(5),
		"sliding":  NewSlidingWindow(units.Seconds(20)),
		"harmonic": NewHarmonicMean(5),
		"quantile": NewEmpiricalQuantile(16),
	}
	for name, p := range preds {
		for i := 0; i < 40; i++ {
			p.Observe(Sample{Mbps: units.Mbps(7.5), Duration: units.Seconds(2), EndTime: units.Seconds(2 * (i + 1))})
		}
		if got := p.Predict(units.Seconds(80), units.Seconds(2)); math.Abs(float64(got-7.5)) > 1e-6 {
			t.Errorf("%s: constant-stream prediction = %v, want 7.5", name, got)
		}
	}
}

func TestSafeEMATracksAndCollapses(t *testing.T) {
	s := NewSafeEMA()
	if s.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("empty SafeEMA should predict 0")
	}
	// Steady stream: estimates the true rate.
	for i := 0; i < 30; i++ {
		s.Observe(Sample{Mbps: units.Mbps(20), Duration: units.Seconds(2), EndTime: units.Seconds(2 * (i + 1))})
	}
	if got := s.Predict(units.Seconds(60), units.Seconds(2)); math.Abs(float64(got-20)) > 0.5 {
		t.Errorf("steady SafeEMA = %v, want ~20", got)
	}
	// A single collapsed sample must dominate immediately (the min-with-last
	// safety rule): one 10-second download at 1.5 Mb/s.
	s.Observe(Sample{Mbps: units.Mbps(1.5), Duration: units.Seconds(10), EndTime: units.Seconds(72)})
	if got := s.Predict(units.Seconds(72), units.Seconds(2)); got > 1.6 {
		t.Errorf("SafeEMA after collapse = %v, want <= 1.5", got)
	}
	// Recovery is conservative: one fast sample must NOT restore the old
	// estimate instantly.
	s.Observe(Sample{Mbps: units.Mbps(40), Duration: units.Seconds(0.5), EndTime: units.Seconds(73)})
	if got := s.Predict(units.Seconds(73), units.Seconds(2)); got > 20 {
		t.Errorf("SafeEMA after one recovery sample = %v, want conservative", got)
	}
	s.Reset()
	if s.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("reset SafeEMA should predict 0")
	}
	// Invalid samples ignored.
	s.Observe(Sample{Mbps: units.Mbps(-1), Duration: units.Seconds(2)})
	s.Observe(Sample{Mbps: units.Mbps(5), Duration: units.Seconds(0)})
	if s.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("invalid samples should be ignored")
	}
}

func TestSafeEMANeverAboveComponents(t *testing.T) {
	// The safe estimate is min(fast, slow, last-if-lower): it can never
	// exceed a plain EMA fed the same stream with either half-life.
	fast := NewEMA(units.Seconds(3))
	slow := NewEMA(units.Seconds(8))
	s := NewSafeEMA()
	stream := []float64{10, 14, 3, 22, 8, 30, 2, 18, 25, 6}
	for i, mbps := range stream {
		sm := Sample{Mbps: units.Mbps(mbps), Duration: units.Seconds(2), EndTime: units.Seconds(2 * (i + 1))}
		fast.Observe(sm)
		slow.Observe(sm)
		s.Observe(sm)
		safe := s.Predict(units.Seconds(0), units.Seconds(2))
		if safe > fast.Predict(units.Seconds(0), units.Seconds(2))+1e-9 || safe > slow.Predict(units.Seconds(0), units.Seconds(2))+1e-9 {
			t.Fatalf("step %d: safe %v above components (%v, %v)", i, safe, fast.Predict(units.Seconds(0), units.Seconds(2)), slow.Predict(units.Seconds(0), units.Seconds(2)))
		}
	}
}

func TestNoisyResetDelegates(t *testing.T) {
	base := NewEMA(units.Seconds(4))
	n := NewNoisy(base, 0.1, 3)
	n.Observe(obs(12))
	if base.Predict(units.Seconds(0), units.Seconds(2)) == 0 {
		t.Error("Noisy.Observe did not reach the base predictor")
	}
	n.Reset()
	if base.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("Noisy.Reset did not reset the base predictor")
	}
	// Zero/negative base passes through unperturbed.
	if got := n.Predict(units.Seconds(0), units.Seconds(2)); got != 0 {
		t.Errorf("noisy prediction on empty base = %v", got)
	}
}

func TestEmpiricalQuantileReset(t *testing.T) {
	e := NewEmpiricalQuantile(8)
	e.Observe(obs(5))
	e.Reset()
	if e.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("reset quantile predictor should predict 0")
	}
	e.Observe(Sample{Mbps: units.Mbps(-2), Duration: units.Seconds(2)})
	if e.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("invalid sample accepted")
	}
}

func TestMovingAverageIgnoresInvalid(t *testing.T) {
	m := NewMovingAverage(3)
	m.Observe(Sample{Mbps: units.Mbps(-1), Duration: units.Seconds(2)})
	m.Observe(Sample{Mbps: units.Mbps(5), Duration: units.Seconds(0)})
	if m.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("invalid samples accepted")
	}
}

func TestSlidingWindowReset(t *testing.T) {
	w := NewSlidingWindow(units.Seconds(10))
	w.Observe(Sample{Mbps: units.Mbps(9), Duration: units.Seconds(2), EndTime: units.Seconds(2)})
	w.Reset()
	if w.Predict(units.Seconds(2), units.Seconds(2)) != 0 {
		t.Error("reset sliding window should predict 0")
	}
	w.Observe(Sample{Mbps: units.Mbps(-3), Duration: units.Seconds(2), EndTime: units.Seconds(4)})
	if w.Predict(units.Seconds(4), units.Seconds(2)) != 0 {
		t.Error("invalid sample accepted")
	}
}

func TestHarmonicMeanReset(t *testing.T) {
	h := NewHarmonicMean(4)
	h.Observe(obs(6))
	h.Reset()
	if h.Predict(units.Seconds(0), units.Seconds(2)) != 0 {
		t.Error("reset harmonic mean should predict 0")
	}
}
